//! Chrome/Perfetto `trace_event` export.
//!
//! Serializes a [`Timeline`] into the JSON Trace Event Format that
//! `chrome://tracing` and [ui.perfetto.dev](https://ui.perfetto.dev)
//! load directly:
//!
//! * each simulated node becomes a *process* (`pid` = node id) with two
//!   tracks: `tid` 0 "sched" (scheduler steps as `X` complete slices) and
//!   `tid` 1 "contexts" (heap-context residency as `b`/`e` async spans);
//! * matched message flows become `s`/`f` flow arrows from the sender's
//!   sched track to the receiver's;
//! * fallbacks and shell adoptions become instant events — the moments
//!   the hybrid model *adapted*.
//!
//! Virtual cycles are written one-per-microsecond (the format's `ts`
//! unit), so "1 µs" in the UI reads as one machine cycle. The writer is
//! hand-rolled — the environment has no serde — and its output is
//! validated by the integration tests through [`crate::json`].

use std::fmt::Write as _;

use hem_core::TraceEvent;
use hem_ir::Program;
use hem_machine::Cycles;

use crate::model::Timeline;
use hem_core::TraceRecord;

/// Track ids within a node's process.
const TID_SCHED: u32 = 0;
const TID_CTX: u32 = 1;
const TID_REQ: u32 = 2;

struct W {
    out: String,
    first: bool,
}

impl W {
    fn new() -> W {
        W {
            out: String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n"),
            first: true,
        }
    }

    /// Append one event object (the caller provides the inner fields).
    fn event(&mut self, inner: std::fmt::Arguments<'_>) {
        if !self.first {
            self.out.push_str(",\n");
        }
        self.first = false;
        self.out.push('{');
        let _ = self.out.write_fmt(inner);
        self.out.push('}');
    }

    fn finish(mut self) -> String {
        self.out.push_str("\n]}\n");
        self.out
    }
}

fn esc(s: &str) -> String {
    crate::json::escape(s)
}

/// Serialize a timeline (plus the raw records, for instants) to a
/// Perfetto-loadable JSON string.
pub fn to_json(records: &[TraceRecord], tl: &Timeline, program: &Program) -> String {
    to_json_with_spec(records, tl, program, None)
}

/// [`to_json`], optionally with a speculative-executor diagnostics track:
/// a synthetic "speculation" process whose counter (`C`) events carry the
/// run's committed-window / rollback / anti-message totals, so a
/// `hemprof --speculative --perfetto` capture shows how much optimism the
/// host execution spent next to what the simulated machine did.
pub fn to_json_with_spec(
    records: &[TraceRecord],
    tl: &Timeline,
    program: &Program,
    spec: Option<&crate::SpecSummary>,
) -> String {
    to_json_full(records, tl, program, spec, None)
}

/// [`to_json_with_spec`], optionally with virtual-time series counter
/// tracks: a synthetic "series" process whose `C` (counter) events plot
/// the windowed load (arrived/done/shed), in-flight requests, queue-wait
/// integral, and total node occupancy over virtual time — one sample per
/// series window, stamped at the window's start.
pub fn to_json_full(
    records: &[TraceRecord],
    tl: &Timeline,
    program: &Program,
    spec: Option<&crate::SpecSummary>,
    series: Option<&crate::SeriesSummary>,
) -> String {
    let mut w = W::new();

    if let Some(se) = series {
        // One process above both the node pids and the speculation pid.
        let pid = tl.n_nodes + 1;
        w.event(format_args!(
            "\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":\"series (window {} cycles)\"}}",
            se.window
        ));
        for b in &se.buckets {
            let ts = b.start;
            w.event(format_args!(
                "\"ph\":\"C\",\"cat\":\"series\",\"name\":\"load\",\"pid\":{pid},\"tid\":0,\
                 \"ts\":{ts},\"args\":{{\"arrived\":{},\"done\":{},\"shed\":{}}}",
                b.arrived, b.done, b.shed
            ));
            w.event(format_args!(
                "\"ph\":\"C\",\"cat\":\"series\",\"name\":\"in-flight\",\"pid\":{pid},\
                 \"tid\":0,\"ts\":{ts},\"args\":{{\"requests\":{}}}",
                b.in_flight
            ));
            w.event(format_args!(
                "\"ph\":\"C\",\"cat\":\"series\",\"name\":\"queue wait\",\"pid\":{pid},\
                 \"tid\":0,\"ts\":{ts},\"args\":{{\"cycles\":{}}}",
                b.queue_wait
            ));
            w.event(format_args!(
                "\"ph\":\"C\",\"cat\":\"series\",\"name\":\"occupancy\",\"pid\":{pid},\
                 \"tid\":0,\"ts\":{ts},\"args\":{{\"busy_cycles\":{}}}",
                b.busy_total()
            ));
        }
    }

    if let Some(s) = spec {
        // One process above the node pids; counters are totals stamped at
        // the end of the run (the executor validates at window barriers,
        // so there is no meaningful per-cycle series to plot).
        let pid = tl.n_nodes;
        let at = tl.makespan;
        w.event(format_args!(
            "\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":\"speculation ({} threads)\"}}",
            s.threads
        ));
        w.event(format_args!(
            "\"ph\":\"C\",\"cat\":\"spec\",\"name\":\"windows\",\"pid\":{pid},\"tid\":0,\
             \"ts\":{at},\"args\":{{\"committed\":{},\"rolled_back\":{},\"serial_steps\":{}}}",
            s.windows, s.rollbacks, s.serial_steps
        ));
        w.event(format_args!(
            "\"ph\":\"C\",\"cat\":\"spec\",\"name\":\"rollback cost\",\"pid\":{pid},\"tid\":0,\
             \"ts\":{at},\"args\":{{\"anti_messages\":{},\"ckpt_nodes\":{}}}",
            s.anti_messages, s.ckpt_nodes
        ));
    }

    // Process/thread naming metadata.
    for n in 0..tl.n_nodes {
        w.event(format_args!(
            "\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{n},\"tid\":0,\
             \"args\":{{\"name\":\"node {n}\"}}"
        ));
        w.event(format_args!(
            "\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":{n},\"tid\":{TID_SCHED},\
             \"args\":{{\"name\":\"sched\"}}"
        ));
        w.event(format_args!(
            "\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":{n},\"tid\":{TID_CTX},\
             \"args\":{{\"name\":\"contexts\"}}"
        ));
        if !tl.requests.is_empty() {
            w.event(format_args!(
                "\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":{n},\"tid\":{TID_REQ},\
                 \"args\":{{\"name\":\"requests\"}}"
            ));
        }
    }

    // Scheduler steps as complete slices.
    for steps in &tl.steps {
        for s in steps {
            w.event(format_args!(
                "\"ph\":\"X\",\"cat\":\"sched\",\"name\":\"{}\",\"pid\":{},\
                 \"tid\":{TID_SCHED},\"ts\":{},\"dur\":{},\
                 \"args\":{{\"msgs\":{}}}",
                s.kind_name(),
                s.node,
                s.start,
                s.end - s.start,
                s.msgs.len(),
            ));
        }
    }

    // Context residency as async spans (id = span index; ids are unique
    // trace-wide so `cat`+`id` matching never collides across reuse).
    for (i, c) in tl.ctx_spans.iter().enumerate() {
        let name = format!(
            "{}{} ctx{}",
            if c.fallback { "fallback " } else { "" },
            esc(&program.method(c.method).name),
            c.ctx
        );
        w.event(format_args!(
            "\"ph\":\"b\",\"cat\":\"ctx\",\"name\":\"{name}\",\"id\":{i},\
             \"pid\":{},\"tid\":{TID_CTX},\"ts\":{}",
            c.node, c.start
        ));
        let end = c.end.unwrap_or(tl.makespan);
        w.event(format_args!(
            "\"ph\":\"e\",\"cat\":\"ctx\",\"name\":\"{name}\",\"id\":{i},\
             \"pid\":{},\"tid\":{TID_CTX},\"ts\":{end}",
            c.node
        ));
    }

    // External request sojourns (open-system runs) as async spans on the
    // target node's "requests" track; shed requests are instants. Ids are
    // unique within `cat` "req", so they never collide with ctx spans.
    for (i, r) in tl.requests.iter().enumerate() {
        if r.shed {
            w.event(format_args!(
                "\"ph\":\"i\",\"s\":\"t\",\"cat\":\"req\",\"name\":\"shed req{}\",\
                 \"pid\":{},\"tid\":{TID_REQ},\"ts\":{}",
                r.req, r.node, r.start
            ));
            continue;
        }
        let name = format!("req{}", r.req);
        w.event(format_args!(
            "\"ph\":\"b\",\"cat\":\"req\",\"name\":\"{name}\",\"id\":{i},\
             \"pid\":{},\"tid\":{TID_REQ},\"ts\":{}",
            r.node, r.start
        ));
        let end = r.end.unwrap_or(tl.makespan).max(r.start);
        w.event(format_args!(
            "\"ph\":\"e\",\"cat\":\"req\",\"name\":\"{name}\",\"id\":{i},\
             \"pid\":{},\"tid\":{TID_REQ},\"ts\":{end}",
            r.node
        ));
    }

    // Message flows as arrows between sched tracks.
    for (i, f) in tl.flows.iter().enumerate() {
        w.event(format_args!(
            "\"ph\":\"s\",\"cat\":\"msg\",\"name\":\"{}\",\"id\":{i},\
             \"pid\":{},\"tid\":{TID_SCHED},\"ts\":{}",
            f.cause, f.from, f.sent_at
        ));
        w.event(format_args!(
            "\"ph\":\"f\",\"bp\":\"e\",\"cat\":\"msg\",\"name\":\"{}\",\"id\":{i},\
             \"pid\":{},\"tid\":{TID_SCHED},\"ts\":{}",
            f.cause, f.to, f.handled_at
        ));
    }

    // Adaptation instants.
    for r in records {
        match r.event {
            TraceEvent::Fallback { node, method, .. } => instant(
                &mut w,
                node.0,
                r.at,
                &format!("fallback {}", esc(&program.method(method).name)),
            ),
            TraceEvent::ShellAdopted { node, method, .. } => instant(
                &mut w,
                node.0,
                r.at,
                &format!("shell adopted {}", esc(&program.method(method).name)),
            ),
            TraceEvent::Retransmit { node, to, attempt } => instant(
                &mut w,
                node.0,
                r.at,
                &format!("retransmit->n{} #{attempt}", to.0),
            ),
            _ => {}
        }
    }

    w.finish()
}

fn instant(w: &mut W, node: u32, at: Cycles, name: &str) {
    w.event(format_args!(
        "\"ph\":\"i\",\"s\":\"t\",\"cat\":\"adapt\",\"name\":\"{name}\",\
         \"pid\":{node},\"tid\":{TID_SCHED},\"ts\":{at}"
    ));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use hem_core::MsgCause;
    use hem_machine::NodeId;

    fn program_with_one_method() -> Program {
        let mut pb = hem_ir::ProgramBuilder::new();
        let c = pb.class("C", false);
        let m = pb.declare(c, "m", 0);
        pb.define(m, |mb| mb.reply(0));
        pb.finish()
    }

    #[test]
    fn spec_counter_track_is_optional_and_parses() {
        let a = NodeId(0);
        let recs = vec![
            TraceRecord {
                at: 0,
                event: TraceEvent::EventStart {
                    node: a,
                    kind: 1,
                    req: 0,
                },
            },
            TraceRecord {
                at: 6,
                event: TraceEvent::EventEnd { node: a },
            },
        ];
        let tl = Timeline::build(&recs, 2);
        let program = program_with_one_method();
        // Without a summary the output is unchanged: no counter events.
        let plain = Json::parse(&to_json(&recs, &tl, &program)).expect("valid JSON");
        let count_c = |doc: &Json| {
            doc.get("traceEvents")
                .unwrap()
                .as_arr()
                .unwrap()
                .iter()
                .filter(|e| e.get("ph").and_then(|v| v.as_str()) == Some("C"))
                .count()
        };
        assert_eq!(count_c(&plain), 0);
        let spec = crate::SpecSummary {
            threads: 4,
            windows: 12,
            serial_steps: 3,
            rollbacks: 5,
            anti_messages: 9,
            ckpt_nodes: 40,
            max_window: 64,
        };
        let out = to_json_with_spec(&recs, &tl, &program, Some(&spec));
        let doc = Json::parse(&out).expect("valid JSON");
        assert_eq!(count_c(&doc), 2, "windows + rollback-cost counters");
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let windows = events
            .iter()
            .find(|e| e.get("name").and_then(|v| v.as_str()) == Some("windows"))
            .expect("windows counter");
        let args = windows.get("args").unwrap();
        assert_eq!(args.get("committed").unwrap().as_num(), Some(12.0));
        assert_eq!(args.get("rolled_back").unwrap().as_num(), Some(5.0));
        // The counter track lives on its own pid above the node pids.
        assert_eq!(windows.get("pid").unwrap().as_num(), Some(2.0));
    }

    #[test]
    fn exports_valid_json_with_slices_flows_and_spans() {
        let a = NodeId(0);
        let b = NodeId(1);
        let recs = vec![
            TraceRecord {
                at: 0,
                event: TraceEvent::EventStart {
                    node: a,
                    kind: 1,
                    req: 0,
                },
            },
            TraceRecord {
                at: 1,
                event: TraceEvent::ParInvoke {
                    node: a,
                    method: hem_ir::MethodId(0),
                    ctx: 0,
                },
            },
            TraceRecord {
                at: 2,
                event: TraceEvent::MsgSent {
                    from: a,
                    to: b,
                    words: 3,
                    cause: MsgCause::Request,
                    req: 0,
                },
            },
            TraceRecord {
                at: 5,
                event: TraceEvent::CtxFreed { node: a, ctx: 0 },
            },
            TraceRecord {
                at: 6,
                event: TraceEvent::EventEnd { node: a },
            },
            TraceRecord {
                at: 9,
                event: TraceEvent::EventStart {
                    node: b,
                    kind: 0,
                    req: 0,
                },
            },
            TraceRecord {
                at: 9,
                event: TraceEvent::MsgHandled {
                    node: b,
                    from: a,
                    words: 3,
                    cause: MsgCause::Request,
                    req: 0,
                    deliver: 0,
                    retx: false,
                },
            },
            TraceRecord {
                at: 12,
                event: TraceEvent::EventEnd { node: b },
            },
        ];
        let tl = Timeline::build(&recs, 2);
        let program = program_with_one_method();
        let out = to_json(&recs, &tl, &program);
        let doc = Json::parse(&out).expect("valid JSON");
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let ph = |p: &str| {
            events
                .iter()
                .filter(|e| e.get("ph").and_then(|v| v.as_str()) == Some(p))
                .count()
        };
        assert_eq!(ph("X"), 2, "one slice per step");
        assert_eq!(ph("s"), 1, "flow start");
        assert_eq!(ph("f"), 1, "flow end");
        assert_eq!(ph("b"), 1, "ctx span begin");
        assert_eq!(ph("e"), 1, "ctx span end");
        assert!(ph("M") >= 6, "naming metadata per node");
        // No open-system records: no "requests" track metadata.
        assert!(
            !events
                .iter()
                .any(|e| { e.get("cat").and_then(|v| v.as_str()) == Some("req") }),
            "closed-system trace has no request events"
        );
        // Every node has at least one slice.
        for n in 0..2 {
            assert!(
                events.iter().any(|e| {
                    e.get("ph").and_then(|v| v.as_str()) == Some("X")
                        && e.get("pid").and_then(|v| v.as_num()) == Some(n as f64)
                }),
                "node {n} has a slice"
            );
        }
    }

    #[test]
    fn request_spans_export_on_their_own_track() {
        let n = NodeId(0);
        let recs = vec![
            TraceRecord {
                at: 10,
                event: TraceEvent::RequestArrived { node: n, req: 1 },
            },
            TraceRecord {
                at: 12,
                event: TraceEvent::RequestShed { node: n, req: 2 },
            },
            TraceRecord {
                at: 11,
                event: TraceEvent::EventStart {
                    node: n,
                    kind: 0,
                    req: 0,
                },
            },
            TraceRecord {
                at: 30,
                event: TraceEvent::RequestDone { node: n, req: 1 },
            },
            TraceRecord {
                at: 30,
                event: TraceEvent::EventEnd { node: n },
            },
        ];
        let tl = Timeline::build(&recs, 1);
        let program = program_with_one_method();
        let out = to_json(&recs, &tl, &program);
        let doc = Json::parse(&out).expect("valid JSON");
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let req = |p: &str| {
            events
                .iter()
                .filter(|e| {
                    e.get("cat").and_then(|v| v.as_str()) == Some("req")
                        && e.get("ph").and_then(|v| v.as_str()) == Some(p)
                })
                .count()
        };
        assert_eq!(req("b"), 1, "one request span begin");
        assert_eq!(req("e"), 1, "one request span end");
        assert_eq!(req("i"), 1, "shed instant");
        assert!(
            events.iter().any(|e| {
                e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(|v| v.as_str())
                    == Some("requests")
            }),
            "requests track named"
        );
    }
}
