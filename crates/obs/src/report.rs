//! Paper-Table-style summaries built from a [`Rollup`].
//!
//! [`Report::text`] renders the per-method invocation-path table the
//! paper's evaluation revolves around (which fraction of each method's
//! invocations stayed on the stack, how often speculation fell back),
//! followed by traffic, histogram and machine sections. [`Report::json`]
//! emits the same data machine-readably (validated by the integration
//! tests through [`crate::json`]).

use std::fmt::Write as _;

use hem_analysis::SchemaMap;
use hem_ir::{MethodId, Program};
use hem_machine::stats::MachineStats;

use crate::json::escape;
use crate::rollup::{MethodCell, Rollup};

/// One method's row.
#[derive(Debug, Clone)]
pub struct MethodRow {
    /// Method id.
    pub method: u32,
    /// `Class::method` name.
    pub name: String,
    /// Selected sequential schema.
    pub schema: String,
    /// Counts summed over nodes.
    pub cell: MethodCell,
}

/// A rendered summary.
#[derive(Debug)]
pub struct Report {
    /// Caption, e.g. `sor p=64 seed=1`.
    pub title: String,
    /// Per-method rows (methods that were invoked at least once).
    pub rows: Vec<MethodRow>,
    /// Grand totals.
    pub total: MethodCell,
    /// Messages and words by cause: `(requests, replies, acks, retx)`,
    /// each `(msgs, words)`.
    pub traffic: [(u64, u64); 4],
    /// Active directed links.
    pub links: usize,
    /// Continuations lazily materialized.
    pub conts: u64,
    /// Residency histogram summary.
    pub residency: String,
    /// Residency mean (cycles).
    pub residency_mean: f64,
    /// Touch-latency histogram summary.
    pub touch: String,
    /// Touch-latency mean (cycles).
    pub touch_mean: f64,
    /// Makespan in cycles.
    pub makespan: u64,
    /// Node count.
    pub nodes: usize,
    /// Trace-ring evictions over the run (non-zero = the trace the
    /// rollup saw was truncated).
    pub dropped_events: u64,
    per_link: Vec<(u32, u32, u64, u64)>,
}

impl Report {
    /// Build a report from a rollup plus the machine's own stats.
    pub fn new(
        title: &str,
        rollup: &Rollup,
        stats: &MachineStats,
        program: &Program,
        schemas: &SchemaMap,
    ) -> Report {
        let mut rows = Vec::new();
        for m in rollup.methods() {
            let cell = rollup.method_totals(m);
            let meth = program.method(MethodId(m));
            let class = &program.class(meth.class).name;
            rows.push(MethodRow {
                method: m,
                name: format!("{class}::{}", meth.name),
                schema: schemas.of(MethodId(m)).to_string(),
                cell,
            });
        }
        let mut traffic = [(0u64, 0u64); 4];
        let mut per_link = Vec::new();
        for ((f, t), l) in rollup.per_link() {
            for (i, tr) in traffic.iter_mut().enumerate() {
                tr.0 += l.msgs[i];
                tr.1 += l.words[i];
            }
            per_link.push((f, t, l.total_msgs(), l.total_words()));
        }
        Report {
            title: title.to_string(),
            rows,
            total: rollup.grand_total(),
            traffic,
            links: per_link.len(),
            conts: rollup.total_conts(),
            residency: rollup.residency.summary(),
            residency_mean: rollup.residency.mean(),
            touch: rollup.touch_latency.summary(),
            touch_mean: rollup.touch_latency.mean(),
            makespan: stats.makespan(),
            nodes: stats.per_node.len(),
            dropped_events: stats.sched.dropped_events,
            per_link,
        }
    }

    /// Render the text report.
    pub fn text(&self) -> String {
        let mut o = String::new();
        let _ = writeln!(o, "== {} ==", self.title);
        let _ = writeln!(
            o,
            "{} nodes, makespan {} cycles{}",
            self.nodes,
            self.makespan,
            if self.dropped_events > 0 {
                format!(
                    " [TRUNCATED TRACE: {} records dropped]",
                    self.dropped_events
                )
            } else {
                String::new()
            }
        );
        let _ = writeln!(o);
        let _ = writeln!(
            o,
            "{:<24} {:>3} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>7} {:>7} {:>7}",
            "method", "sch", "NB", "MB", "CP", "inline", "par", "fallbk", "shell", "stack%", "fb%"
        );
        for r in &self.rows {
            let c = &r.cell;
            let _ = writeln!(
                o,
                "{:<24} {:>3} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>7} {:>6.1}% {:>6.1}%",
                r.name,
                r.schema,
                c.stack_nb,
                c.stack_mb,
                c.stack_cp,
                c.inlined,
                c.par_invokes,
                c.fallbacks,
                c.shells_adopted,
                100.0 * c.stack_fraction(),
                100.0 * c.fallback_rate(),
            );
        }
        let c = &self.total;
        let _ = writeln!(
            o,
            "{:<24} {:>3} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>7} {:>6.1}% {:>6.1}%",
            "TOTAL",
            "",
            c.stack_nb,
            c.stack_mb,
            c.stack_cp,
            c.inlined,
            c.par_invokes,
            c.fallbacks,
            c.shells_adopted,
            100.0 * c.stack_fraction(),
            100.0 * c.fallback_rate(),
        );
        let _ = writeln!(o);
        let names = ["requests", "replies", "acks", "retransmits"];
        let _ = writeln!(o, "traffic ({} active links):", self.links);
        for (i, name) in names.iter().enumerate() {
            let (m, w) = self.traffic[i];
            if m > 0 {
                let _ = writeln!(o, "  {name:<12} {m:>8} msgs {w:>10} words");
            }
        }
        if self.conts > 0 {
            let _ = writeln!(o, "  {:<12} {:>8}", "lazy conts", self.conts);
        }
        let _ = writeln!(o);
        let _ = writeln!(
            o,
            "ctx residency (cycles, log2 buckets, mean {:.1}):\n  {}",
            self.residency_mean, self.residency
        );
        let _ = writeln!(
            o,
            "touch latency (cycles, log2 buckets, mean {:.1}):\n  {}",
            self.touch_mean, self.touch
        );
        o
    }

    /// Render the JSON report.
    pub fn json(&self) -> String {
        let mut o = String::new();
        let _ = write!(
            o,
            "{{\"title\":\"{}\",\"nodes\":{},\"makespan\":{},\"dropped_events\":{},",
            escape(&self.title),
            self.nodes,
            self.makespan,
            self.dropped_events
        );
        let _ = write!(o, "\"methods\":[");
        for (i, r) in self.rows.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            let c = &r.cell;
            let _ = write!(
                o,
                "{{\"id\":{},\"name\":\"{}\",\"schema\":\"{}\",\"stack_nb\":{},\
                 \"stack_mb\":{},\"stack_cp\":{},\"inlined\":{},\"par_invokes\":{},\
                 \"fallbacks\":{},\"shells_adopted\":{},\"stack_fraction\":{:.6},\
                 \"fallback_rate\":{:.6}}}",
                r.method,
                escape(&r.name),
                r.schema,
                c.stack_nb,
                c.stack_mb,
                c.stack_cp,
                c.inlined,
                c.par_invokes,
                c.fallbacks,
                c.shells_adopted,
                c.stack_fraction(),
                c.fallback_rate(),
            );
        }
        let _ = write!(o, "],\"traffic\":{{");
        let names = ["requests", "replies", "acks", "retransmits"];
        for (i, name) in names.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            let (m, w) = self.traffic[i];
            let _ = write!(o, "\"{name}\":{{\"msgs\":{m},\"words\":{w}}}");
        }
        let _ = write!(o, "}},\"links\":[");
        for (i, (f, t, m, w)) in self.per_link.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            let _ = write!(o, "{{\"from\":{f},\"to\":{t},\"msgs\":{m},\"words\":{w}}}");
        }
        let _ = write!(
            o,
            "],\"conts_created\":{},\"residency_mean\":{:.6},\"touch_latency_mean\":{:.6}}}",
            self.conts, self.residency_mean, self.touch_mean
        );
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use hem_core::{MsgCause, TraceEvent, TraceRecord};
    use hem_machine::NodeId;

    fn toy() -> (Rollup, MachineStats, Program, SchemaMap) {
        let mut pb = hem_ir::ProgramBuilder::new();
        let c = pb.class("C", false);
        let m = pb.declare(c, "work", 0);
        pb.define(m, |mb| mb.reply(1));
        let program = pb.finish();
        let schemas =
            hem_analysis::Analysis::analyze(&program).schemas(hem_analysis::InterfaceSet::Full);
        let recs = vec![
            TraceRecord {
                at: 1,
                event: TraceEvent::StackComplete {
                    node: NodeId(0),
                    method: MethodId(0),
                    schema: hem_analysis::Schema::MayBlock,
                },
            },
            TraceRecord {
                at: 2,
                event: TraceEvent::MsgSent {
                    from: NodeId(0),
                    to: NodeId(1),
                    words: 4,
                    cause: MsgCause::Request,
                },
            },
        ];
        let rollup = Rollup::from_records(&recs);
        let mut stats = MachineStats::new(2);
        stats.node_time = vec![10, 20];
        (rollup, stats, program, schemas)
    }

    #[test]
    fn text_report_has_the_method_table() {
        let (r, s, p, sm) = toy();
        let rep = Report::new("toy", &r, &s, &p, &sm);
        let text = rep.text();
        assert!(text.contains("C::work"));
        assert!(text.contains("makespan 20"));
        assert!(text.contains("requests"));
        assert!(!text.contains("TRUNCATED"));
    }

    #[test]
    fn json_report_parses_and_carries_the_counts() {
        let (r, s, p, sm) = toy();
        let rep = Report::new("toy", &r, &s, &p, &sm);
        let doc = Json::parse(&rep.json()).expect("valid json");
        assert_eq!(doc.get("makespan").unwrap().as_num(), Some(20.0));
        let methods = doc.get("methods").unwrap().as_arr().unwrap();
        assert_eq!(methods.len(), 1);
        assert_eq!(methods[0].get("stack_mb").unwrap().as_num(), Some(1.0));
        let traffic = doc.get("traffic").unwrap();
        assert_eq!(
            traffic
                .get("requests")
                .unwrap()
                .get("msgs")
                .unwrap()
                .as_num(),
            Some(1.0)
        );
    }

    #[test]
    fn truncation_is_loud() {
        let (r, mut s, p, sm) = toy();
        s.sched.dropped_events = 7;
        let rep = Report::new("toy", &r, &s, &p, &sm);
        assert!(rep.text().contains("TRUNCATED TRACE: 7"));
    }
}
