//! Paper-Table-style summaries built from a [`Rollup`].
//!
//! [`Report::text`] renders the per-method invocation-path table the
//! paper's evaluation revolves around (which fraction of each method's
//! invocations stayed on the stack, how often speculation fell back),
//! followed by traffic, histogram and machine sections. [`Report::json`]
//! emits the same data machine-readably (validated by the integration
//! tests through [`crate::json`]).

use std::fmt::Write as _;

use hem_analysis::SchemaMap;
use hem_ir::{MethodId, Program};
use hem_machine::stats::MachineStats;

use crate::blame::BlameSummary;
use crate::hist::Log2Hist;
use crate::json::escape;
use crate::rollup::{MethodCell, Rollup};
use crate::series::SeriesSummary;

/// Scheduler-occupancy counters lifted straight out of
/// `MachineStats.sched`: how the dispatch loop (and, for the parallel
/// executors, the window coordinator) actually ran. Host-execution
/// diagnostics — like [`SpecSummary`], they vary with the executor and
/// thread count while the simulated machine stays bit-identical.
#[derive(Debug, Clone, Copy, Default)]
pub struct SchedSummary {
    /// Events actually dispatched.
    pub events_dispatched: u64,
    /// Parallel virtual-time windows executed (0 under the
    /// single-threaded dispatchers).
    pub windows: u64,
    /// Events the window coordinator stepped serially.
    pub serial_steps: u64,
    /// Events dispatched inside parallel windows.
    pub window_events: u64,
    /// Most events dispatched in any single parallel window.
    pub max_window_events: u64,
}

impl SchedSummary {
    /// Lift the counters out of the machine's own stats block.
    pub fn from_stats(s: &hem_machine::stats::SchedStats) -> SchedSummary {
        SchedSummary {
            events_dispatched: s.events_dispatched,
            windows: s.windows,
            serial_steps: s.serial_steps,
            window_events: s.window_events,
            max_window_events: s.max_window_events,
        }
    }

    /// Mean events per parallel window (0.0 when no windows formed).
    pub fn mean_window_events(&self) -> f64 {
        if self.windows == 0 {
            0.0
        } else {
            self.window_events as f64 / self.windows as f64
        }
    }
}

/// Steady-state summary of an open-system (`hemprof serve`) run: what the
/// arrival process offered, what admission control did with it, and the
/// post-warm-up latency distribution.
#[derive(Debug, Clone, Default)]
pub struct ServiceSummary {
    /// Requests the arrival process generated inside the horizon.
    pub offered: u64,
    /// Requests injected into the machine.
    pub admitted: u64,
    /// Requests shed because the target's queue was over the cap.
    pub shed_queue: u64,
    /// Requests shed because the deadline was already infeasible.
    pub shed_deadline: u64,
    /// Admitted requests that completed before the horizon.
    pub completed: u64,
    /// Admitted requests still in flight at the horizon.
    pub pending: u64,
    /// Completions whose sojourn exceeded the deadline (0 when no
    /// deadline was set).
    pub missed_deadline: u64,
    /// Completions discarded by warm-up trimming (arrival < warmup).
    pub trimmed: u64,
    /// Virtual-time horizon of the run.
    pub horizon: u64,
    /// Warm-up cutoff: completions of requests arriving before it are
    /// excluded from `latency`.
    pub warmup: u64,
    /// Steady-state sojourn times (arrival → reply) of the kept
    /// completions.
    pub latency: Log2Hist,
}

/// Summary of what the optimistic (Time-Warp) executor did during a
/// `--speculative` run: committed windows, rollbacks, cancelled traffic.
/// These are host-execution diagnostics — they vary with the thread
/// count and say nothing about the simulated machine, whose stats stay
/// bit-identical across executors.
#[derive(Debug, Clone, Default)]
pub struct SpecSummary {
    /// Host worker threads the run used.
    pub threads: usize,
    /// Speculative windows committed (validated clean).
    pub windows: u64,
    /// Events stepped serially by the coordinator (timers, or
    /// stragglers landing on the window base).
    pub serial_steps: u64,
    /// Windows rolled back on straggler detection.
    pub rollbacks: u64,
    /// Speculatively sent cross-shard packets cancelled by rollbacks.
    pub anti_messages: u64,
    /// Copy-on-dirty node snapshots taken.
    pub ckpt_nodes: u64,
    /// Widest committed window, in cycles.
    pub max_window: u64,
}

impl SpecSummary {
    /// Fraction of window attempts that rolled back.
    pub fn rollback_rate(&self) -> f64 {
        let attempts = self.windows + self.rollbacks;
        if attempts == 0 {
            0.0
        } else {
            self.rollbacks as f64 / attempts as f64
        }
    }
}

/// One method's row.
#[derive(Debug, Clone)]
pub struct MethodRow {
    /// Method id.
    pub method: u32,
    /// `Class::method` name.
    pub name: String,
    /// Selected sequential schema.
    pub schema: String,
    /// Counts summed over nodes.
    pub cell: MethodCell,
}

/// A rendered summary.
#[derive(Debug)]
pub struct Report {
    /// Caption, e.g. `sor p=64 seed=1`.
    pub title: String,
    /// Per-method rows (methods that were invoked at least once).
    pub rows: Vec<MethodRow>,
    /// Grand totals.
    pub total: MethodCell,
    /// Messages and words by cause: `(requests, replies, acks, retx,
    /// multicasts, reduces, barriers)`, each `(msgs, words)`.
    pub traffic: [(u64, u64); 7],
    /// Active directed links.
    pub links: usize,
    /// Continuations lazily materialized.
    pub conts: u64,
    /// Residency histogram summary.
    pub residency: String,
    /// Residency mean (cycles).
    pub residency_mean: f64,
    /// Residency p50/p95/p99 (cycles).
    pub residency_q: [u64; 3],
    /// Touch-latency histogram summary.
    pub touch: String,
    /// Touch-latency mean (cycles).
    pub touch_mean: f64,
    /// Touch-latency p50/p95/p99 (cycles).
    pub touch_q: [u64; 3],
    /// Open-system section (set via [`Report::with_service`]).
    pub service: Option<ServiceSummary>,
    /// Speculative-executor section (set via [`Report::with_speculative`]).
    pub speculative: Option<SpecSummary>,
    /// Scheduler / window-occupancy counters (set via
    /// [`Report::with_sched`]). Opt-in because they are host-execution
    /// diagnostics: they vary with the executor and thread count, and the
    /// determinism suites compare default reports across executors
    /// bit-for-bit.
    pub sched: Option<SchedSummary>,
    /// Per-request blame section (set via [`Report::with_blame`]).
    pub blame: Option<BlameSummary>,
    /// Virtual-time series section (set via [`Report::with_series`]).
    pub series: Option<SeriesSummary>,
    /// Makespan in cycles.
    pub makespan: u64,
    /// Node count.
    pub nodes: usize,
    /// Trace-ring evictions over the run (non-zero = the trace the
    /// rollup saw was truncated).
    pub dropped_events: u64,
    per_link: Vec<(u32, u32, u64, u64)>,
}

impl Report {
    /// Build a report from a rollup plus the machine's own stats.
    pub fn new(
        title: &str,
        rollup: &Rollup,
        stats: &MachineStats,
        program: &Program,
        schemas: &SchemaMap,
    ) -> Report {
        let mut rows = Vec::new();
        for m in rollup.methods() {
            let cell = rollup.method_totals(m);
            let meth = program.method(MethodId(m));
            let class = &program.class(meth.class).name;
            rows.push(MethodRow {
                method: m,
                name: format!("{class}::{}", meth.name),
                schema: schemas.of(MethodId(m)).to_string(),
                cell,
            });
        }
        let mut traffic = [(0u64, 0u64); 7];
        let mut per_link = Vec::new();
        for ((f, t), l) in rollup.per_link() {
            for (i, tr) in traffic.iter_mut().enumerate() {
                tr.0 += l.msgs[i];
                tr.1 += l.words[i];
            }
            per_link.push((f, t, l.total_msgs(), l.total_words()));
        }
        Report {
            title: title.to_string(),
            rows,
            total: rollup.grand_total(),
            traffic,
            links: per_link.len(),
            conts: rollup.total_conts(),
            residency: rollup.residency.summary(),
            residency_mean: rollup.residency.mean(),
            residency_q: quantiles(&rollup.residency),
            touch: rollup.touch_latency.summary(),
            touch_mean: rollup.touch_latency.mean(),
            touch_q: quantiles(&rollup.touch_latency),
            service: None,
            speculative: None,
            sched: None,
            blame: None,
            series: None,
            makespan: stats.makespan(),
            nodes: stats.per_node.len(),
            dropped_events: stats.sched.dropped_events,
            per_link,
        }
    }

    /// Attach the open-system service section.
    pub fn with_service(mut self, s: ServiceSummary) -> Report {
        self.service = Some(s);
        self
    }

    /// Attach the speculative-executor diagnostics section.
    pub fn with_speculative(mut self, s: SpecSummary) -> Report {
        self.speculative = Some(s);
        self
    }

    /// Attach the scheduler-occupancy diagnostics section.
    pub fn with_sched(mut self, s: SchedSummary) -> Report {
        self.sched = Some(s);
        self
    }

    /// Attach the per-request blame section.
    pub fn with_blame(mut self, b: BlameSummary) -> Report {
        self.blame = Some(b);
        self
    }

    /// Attach the virtual-time series section.
    pub fn with_series(mut self, s: SeriesSummary) -> Report {
        self.series = Some(s);
        self
    }

    /// Render the text report.
    pub fn text(&self) -> String {
        let mut o = String::new();
        let _ = writeln!(o, "== {} ==", self.title);
        let _ = writeln!(
            o,
            "{} nodes, makespan {} cycles{}",
            self.nodes,
            self.makespan,
            if self.dropped_events > 0 {
                format!(
                    " [TRUNCATED TRACE: {} records dropped]",
                    self.dropped_events
                )
            } else {
                String::new()
            }
        );
        let _ = writeln!(o);
        let _ = writeln!(
            o,
            "{:<24} {:>3} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>7} {:>7} {:>7}",
            "method", "sch", "NB", "MB", "CP", "inline", "par", "fallbk", "shell", "stack%", "fb%"
        );
        for r in &self.rows {
            let c = &r.cell;
            let _ = writeln!(
                o,
                "{:<24} {:>3} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>7} {:>6.1}% {:>6.1}%",
                r.name,
                r.schema,
                c.stack_nb,
                c.stack_mb,
                c.stack_cp,
                c.inlined,
                c.par_invokes,
                c.fallbacks,
                c.shells_adopted,
                100.0 * c.stack_fraction(),
                100.0 * c.fallback_rate(),
            );
        }
        let c = &self.total;
        let _ = writeln!(
            o,
            "{:<24} {:>3} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>7} {:>6.1}% {:>6.1}%",
            "TOTAL",
            "",
            c.stack_nb,
            c.stack_mb,
            c.stack_cp,
            c.inlined,
            c.par_invokes,
            c.fallbacks,
            c.shells_adopted,
            100.0 * c.stack_fraction(),
            100.0 * c.fallback_rate(),
        );
        let _ = writeln!(o);
        let names = [
            "requests",
            "replies",
            "acks",
            "retransmits",
            "multicasts",
            "reduces",
            "barriers",
        ];
        let _ = writeln!(o, "traffic ({} active links):", self.links);
        for (i, name) in names.iter().enumerate() {
            let (m, w) = self.traffic[i];
            if m > 0 {
                let _ = writeln!(o, "  {name:<12} {m:>8} msgs {w:>10} words");
            }
        }
        if self.conts > 0 {
            let _ = writeln!(o, "  {:<12} {:>8}", "lazy conts", self.conts);
        }
        let _ = writeln!(o);
        let _ = writeln!(
            o,
            "ctx residency (cycles, log2 buckets, mean {:.1}, p50/p95/p99 {}/{}/{}):\n  {}",
            self.residency_mean,
            self.residency_q[0],
            self.residency_q[1],
            self.residency_q[2],
            self.residency
        );
        let _ = writeln!(
            o,
            "touch latency (cycles, log2 buckets, mean {:.1}, p50/p95/p99 {}/{}/{}):\n  {}",
            self.touch_mean, self.touch_q[0], self.touch_q[1], self.touch_q[2], self.touch
        );
        if let Some(s) = &self.service {
            let q = try_quantiles(&s.latency);
            let _ = writeln!(o);
            let _ = writeln!(
                o,
                "service (open system, horizon {}, warm-up {}):",
                s.horizon, s.warmup
            );
            let _ = writeln!(
                o,
                "  offered {}  admitted {}  shed {} (queue {}, deadline {})",
                s.offered,
                s.admitted,
                s.shed_queue + s.shed_deadline,
                s.shed_queue,
                s.shed_deadline
            );
            let _ = writeln!(
                o,
                "  completed {}  pending-at-horizon {}  missed-deadline {}  warm-up-trimmed {}",
                s.completed, s.pending, s.missed_deadline, s.trimmed
            );
            let _ = writeln!(
                o,
                "  latency (cycles, {} steady-state samples, mean {:.1}):",
                s.latency.count(),
                s.latency.mean()
            );
            match q {
                Some(q) => {
                    let _ = writeln!(
                        o,
                        "    p50 {}  p95 {}  p99 {}  max {}",
                        q[0],
                        q[1],
                        q[2],
                        s.latency.max()
                    );
                }
                // Warm-up trimming (or a too-short horizon) can leave
                // zero steady-state completions; an empty histogram has
                // no quantiles, and printing 0 would fabricate a perfect
                // latency.
                None => {
                    let _ = writeln!(o, "    p50 n/a  p95 n/a  p99 n/a  max n/a (no samples)");
                }
            }
        }
        if let Some(s) = &self.speculative {
            let _ = writeln!(o);
            let _ = writeln!(
                o,
                "speculative executor ({} threads, host diagnostics — simulated stats are \
                 executor-invariant):",
                s.threads
            );
            let _ = writeln!(
                o,
                "  windows {}  serial-steps {}  rollbacks {} ({:.1}% of attempts)",
                s.windows,
                s.serial_steps,
                s.rollbacks,
                100.0 * s.rollback_rate()
            );
            let _ = writeln!(
                o,
                "  anti-messages {}  checkpointed-nodes {}  max-window {} cycles",
                s.anti_messages, s.ckpt_nodes, s.max_window
            );
        }
        if let Some(s) = &self.sched {
            let _ = writeln!(o);
            let _ = writeln!(
                o,
                "scheduler windows (host diagnostics): windows {}  serial-steps {}  \
                 window-events {} (mean {:.1}/window, max {})",
                s.windows,
                s.serial_steps,
                s.window_events,
                s.mean_window_events(),
                s.max_window_events
            );
        }
        if let Some(b) = &self.blame {
            let _ = writeln!(o);
            o.push_str(&b.text());
        }
        if let Some(s) = &self.series {
            let _ = writeln!(o);
            o.push_str(&s.text());
        }
        o
    }

    /// Render the JSON report.
    pub fn json(&self) -> String {
        let mut o = String::new();
        let _ = write!(
            o,
            "{{\"title\":\"{}\",\"nodes\":{},\"makespan\":{},\"dropped_events\":{},\
             \"truncated\":{},",
            escape(&self.title),
            self.nodes,
            self.makespan,
            self.dropped_events,
            self.dropped_events > 0
        );
        let _ = write!(o, "\"methods\":[");
        for (i, r) in self.rows.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            let c = &r.cell;
            let _ = write!(
                o,
                "{{\"id\":{},\"name\":\"{}\",\"schema\":\"{}\",\"stack_nb\":{},\
                 \"stack_mb\":{},\"stack_cp\":{},\"inlined\":{},\"par_invokes\":{},\
                 \"fallbacks\":{},\"shells_adopted\":{},\"stack_fraction\":{:.6},\
                 \"fallback_rate\":{:.6}}}",
                r.method,
                escape(&r.name),
                r.schema,
                c.stack_nb,
                c.stack_mb,
                c.stack_cp,
                c.inlined,
                c.par_invokes,
                c.fallbacks,
                c.shells_adopted,
                c.stack_fraction(),
                c.fallback_rate(),
            );
        }
        let _ = write!(o, "],\"traffic\":{{");
        let names = [
            "requests",
            "replies",
            "acks",
            "retransmits",
            "multicasts",
            "reduces",
            "barriers",
        ];
        for (i, name) in names.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            let (m, w) = self.traffic[i];
            let _ = write!(o, "\"{name}\":{{\"msgs\":{m},\"words\":{w}}}");
        }
        let _ = write!(o, "}},\"links\":[");
        for (i, (f, t, m, w)) in self.per_link.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            let _ = write!(o, "{{\"from\":{f},\"to\":{t},\"msgs\":{m},\"words\":{w}}}");
        }
        let _ = write!(
            o,
            "],\"conts_created\":{},\"residency_mean\":{:.6},\"touch_latency_mean\":{:.6}",
            self.conts, self.residency_mean, self.touch_mean
        );
        let _ = write!(
            o,
            ",\"residency\":{},\"touch_latency\":{}",
            quantile_obj(self.residency_q),
            quantile_obj(self.touch_q)
        );
        if let Some(s) = &self.service {
            let q = try_quantiles(&s.latency);
            let _ = write!(
                o,
                ",\"service\":{{\"horizon\":{},\"warmup\":{},\"offered\":{},\"admitted\":{},\
                 \"shed_queue\":{},\"shed_deadline\":{},\"completed\":{},\"pending\":{},\
                 \"missed_deadline\":{},\"trimmed\":{},\"samples\":{},\"latency_mean\":{},\
                 \"latency_max\":{},\"latency\":{}}}",
                s.horizon,
                s.warmup,
                s.offered,
                s.admitted,
                s.shed_queue,
                s.shed_deadline,
                s.completed,
                s.pending,
                s.missed_deadline,
                s.trimmed,
                s.latency.count(),
                // An empty histogram has no mean/max/quantiles: emit
                // `null` (consumers key off `samples`), never a fake 0.
                if q.is_some() {
                    format!("{:.6}", s.latency.mean())
                } else {
                    "null".into()
                },
                if q.is_some() {
                    s.latency.max().to_string()
                } else {
                    "null".into()
                },
                quantile_obj_opt(q)
            );
        }
        if let Some(s) = &self.speculative {
            let _ = write!(
                o,
                ",\"speculative\":{{\"threads\":{},\"windows\":{},\"serial_steps\":{},\
                 \"rollbacks\":{},\"rollback_rate\":{:.6},\"anti_messages\":{},\
                 \"ckpt_nodes\":{},\"max_window\":{}}}",
                s.threads,
                s.windows,
                s.serial_steps,
                s.rollbacks,
                s.rollback_rate(),
                s.anti_messages,
                s.ckpt_nodes,
                s.max_window
            );
        }
        if let Some(sc) = &self.sched {
            let _ = write!(
                o,
                ",\"sched\":{{\"events_dispatched\":{},\"windows\":{},\"serial_steps\":{},\
                 \"window_events\":{},\"max_window_events\":{}}}",
                sc.events_dispatched,
                sc.windows,
                sc.serial_steps,
                sc.window_events,
                sc.max_window_events
            );
        }
        if let Some(b) = &self.blame {
            let _ = write!(o, ",\"blame\":{}", b.json());
        }
        if let Some(s) = &self.series {
            let _ = write!(o, ",\"series\":{}", s.json());
        }
        o.push('}');
        o
    }
}

fn quantiles(h: &Log2Hist) -> [u64; 3] {
    [h.quantile(0.50), h.quantile(0.95), h.quantile(0.99)]
}

/// `None` when the histogram is empty — empty histograms have no
/// quantiles, and the `quantile` fallback of 0 must never reach a report.
fn try_quantiles(h: &Log2Hist) -> Option<[u64; 3]> {
    Some([
        h.try_quantile(0.50)?,
        h.try_quantile(0.95)?,
        h.try_quantile(0.99)?,
    ])
}

fn quantile_obj(q: [u64; 3]) -> String {
    format!("{{\"p50\":{},\"p95\":{},\"p99\":{}}}", q[0], q[1], q[2])
}

fn quantile_obj_opt(q: Option<[u64; 3]>) -> String {
    match q {
        Some(q) => quantile_obj(q),
        None => r#"{"p50":null,"p95":null,"p99":null}"#.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use hem_core::{MsgCause, TraceEvent, TraceRecord};
    use hem_machine::NodeId;

    fn toy() -> (Rollup, MachineStats, Program, SchemaMap) {
        let mut pb = hem_ir::ProgramBuilder::new();
        let c = pb.class("C", false);
        let m = pb.declare(c, "work", 0);
        pb.define(m, |mb| mb.reply(1));
        let program = pb.finish();
        let schemas =
            hem_analysis::Analysis::analyze(&program).schemas(hem_analysis::InterfaceSet::Full);
        let recs = vec![
            TraceRecord {
                at: 1,
                event: TraceEvent::StackComplete {
                    node: NodeId(0),
                    method: MethodId(0),
                    schema: hem_analysis::Schema::MayBlock,
                },
            },
            TraceRecord {
                at: 2,
                event: TraceEvent::MsgSent {
                    from: NodeId(0),
                    to: NodeId(1),
                    words: 4,
                    cause: MsgCause::Request,
                    req: 0,
                },
            },
        ];
        let rollup = Rollup::from_records(&recs);
        let mut stats = MachineStats::new(2);
        stats.node_time = vec![10, 20];
        (rollup, stats, program, schemas)
    }

    #[test]
    fn text_report_has_the_method_table() {
        let (r, s, p, sm) = toy();
        let rep = Report::new("toy", &r, &s, &p, &sm);
        let text = rep.text();
        assert!(text.contains("C::work"));
        assert!(text.contains("makespan 20"));
        assert!(text.contains("requests"));
        assert!(!text.contains("TRUNCATED"));
    }

    #[test]
    fn json_report_parses_and_carries_the_counts() {
        let (r, s, p, sm) = toy();
        let rep = Report::new("toy", &r, &s, &p, &sm);
        let doc = Json::parse(&rep.json()).expect("valid json");
        assert_eq!(doc.get("makespan").unwrap().as_num(), Some(20.0));
        let methods = doc.get("methods").unwrap().as_arr().unwrap();
        assert_eq!(methods.len(), 1);
        assert_eq!(methods[0].get("stack_mb").unwrap().as_num(), Some(1.0));
        let traffic = doc.get("traffic").unwrap();
        assert_eq!(
            traffic
                .get("requests")
                .unwrap()
                .get("msgs")
                .unwrap()
                .as_num(),
            Some(1.0)
        );
    }

    #[test]
    fn truncation_is_loud() {
        let (r, mut s, p, sm) = toy();
        s.sched.dropped_events = 7;
        let rep = Report::new("toy", &r, &s, &p, &sm);
        assert!(rep.text().contains("TRUNCATED TRACE: 7"));
        // The JSON side carries the same marker.
        let doc = Json::parse(&rep.json()).expect("valid json");
        assert_eq!(doc.get("truncated").unwrap().as_bool(), Some(true));
        assert_eq!(doc.get("dropped_events").unwrap().as_num(), Some(7.0));
    }

    #[test]
    fn json_carries_quantiles_and_untruncated_flag() {
        let (r, s, p, sm) = toy();
        let rep = Report::new("toy", &r, &s, &p, &sm);
        let doc = Json::parse(&rep.json()).expect("valid json");
        assert_eq!(doc.get("truncated").unwrap().as_bool(), Some(false));
        for key in ["residency", "touch_latency"] {
            let q = doc.get(key).unwrap();
            for p in ["p50", "p95", "p99"] {
                assert!(q.get(p).unwrap().as_num().is_some(), "{key}.{p}");
            }
        }
        assert!(doc.get("service").is_none(), "closed system: no section");
    }

    #[test]
    fn service_section_renders_in_text_and_json() {
        let (r, s, p, sm) = toy();
        let mut latency = Log2Hist::default();
        for v in [10, 20, 40, 80, 160] {
            latency.add(v);
        }
        let rep = Report::new("toy", &r, &s, &p, &sm).with_service(ServiceSummary {
            offered: 10,
            admitted: 8,
            shed_queue: 1,
            shed_deadline: 1,
            completed: 5,
            pending: 3,
            missed_deadline: 2,
            trimmed: 1,
            horizon: 10_000,
            warmup: 1_000,
            latency,
        });
        let text = rep.text();
        assert!(text.contains("service (open system, horizon 10000, warm-up 1000)"));
        assert!(text.contains("offered 10  admitted 8  shed 2 (queue 1, deadline 1)"));
        assert!(text.contains("p50"));
        let doc = Json::parse(&rep.json()).expect("valid json");
        let svc = doc.get("service").unwrap();
        assert_eq!(svc.get("offered").unwrap().as_num(), Some(10.0));
        assert_eq!(svc.get("samples").unwrap().as_num(), Some(5.0));
        let q = svc.get("latency").unwrap();
        let p50 = q.get("p50").unwrap().as_num().unwrap();
        let p99 = q.get("p99").unwrap().as_num().unwrap();
        assert!(p50 > 0.0 && p99 >= p50);
        assert_eq!(svc.get("latency_max").unwrap().as_num(), Some(160.0));
    }

    #[test]
    fn empty_service_latency_reports_na_not_zero() {
        // Warm-up trimming can leave zero steady-state completions; the
        // report must say so instead of fabricating p50/p95/p99 = 0.
        let (r, s, p, sm) = toy();
        let rep = Report::new("toy", &r, &s, &p, &sm).with_service(ServiceSummary {
            offered: 3,
            admitted: 3,
            shed_queue: 0,
            shed_deadline: 0,
            completed: 2,
            pending: 1,
            missed_deadline: 0,
            trimmed: 2,
            horizon: 1_000,
            warmup: 900,
            latency: Log2Hist::default(),
        });
        let text = rep.text();
        assert!(
            text.contains("p50 n/a  p95 n/a  p99 n/a  max n/a (no samples)"),
            "text quantiles honest about emptiness:\n{text}"
        );
        assert!(!text.contains("p50 0"), "no fabricated zero quantile");
        let doc = Json::parse(&rep.json()).expect("valid json");
        let svc = doc.get("service").unwrap();
        assert_eq!(svc.get("samples").unwrap().as_num(), Some(0.0));
        assert_eq!(svc.get("latency").unwrap().get("p50"), Some(&Json::Null));
        assert_eq!(svc.get("latency").unwrap().get("p99"), Some(&Json::Null));
        assert_eq!(svc.get("latency_max"), Some(&Json::Null));
        assert_eq!(svc.get("latency_mean"), Some(&Json::Null));
    }

    #[test]
    fn sched_blame_and_series_sections_render() {
        let (r, mut st, p, sm) = toy();
        st.sched.events_dispatched = 100;
        st.sched.windows = 10;
        st.sched.serial_steps = 3;
        st.sched.window_events = 40;
        st.sched.max_window_events = 9;
        let blame = crate::blame::Blame::from_records(&[
            TraceRecord {
                at: 5,
                event: TraceEvent::RequestArrived {
                    node: NodeId(0),
                    req: 0,
                },
            },
            TraceRecord {
                at: 25,
                event: TraceEvent::RequestDone {
                    node: NodeId(0),
                    req: 0,
                },
            },
        ])
        .summary(0.99, 4);
        let series = crate::series::Series::from_records(16, &[]).summary();
        let rep = Report::new("toy", &r, &st, &p, &sm)
            .with_sched(SchedSummary::from_stats(&st.sched))
            .with_blame(blame)
            .with_series(series);
        let text = rep.text();
        assert!(text.contains("scheduler windows"));
        assert!(text.contains("windows 10  serial-steps 3"));
        assert!(text.contains("blame (per-request"));
        assert!(text.contains("series (window 16"));
        let doc = Json::parse(&rep.json()).expect("valid json");
        let sc = doc.get("sched").unwrap();
        assert_eq!(sc.get("windows").unwrap().as_num(), Some(10.0));
        assert_eq!(sc.get("window_events").unwrap().as_num(), Some(40.0));
        assert_eq!(
            doc.get("blame").unwrap().get("completed").unwrap().as_num(),
            Some(1.0)
        );
        assert_eq!(
            doc.get("series").unwrap().get("window").unwrap().as_num(),
            Some(16.0)
        );
        // Without the builders, all three sections stay absent — the
        // determinism suites rely on default reports being
        // executor-invariant.
        let plain = Report::new("toy", &r, &st, &p, &sm);
        assert!(!plain.text().contains("scheduler windows"));
        let base = Json::parse(&plain.json()).unwrap();
        assert!(base.get("blame").is_none());
        assert!(base.get("series").is_none());
        assert!(base.get("sched").is_none());
    }

    #[test]
    fn speculative_section_renders_in_text_and_json() {
        let (r, s, p, sm) = toy();
        let base = Report::new("toy", &r, &s, &p, &sm);
        assert!(
            !base.text().contains("speculative executor"),
            "no section unless attached"
        );
        let rep = Report::new("toy", &r, &s, &p, &sm).with_speculative(SpecSummary {
            threads: 4,
            windows: 30,
            serial_steps: 5,
            rollbacks: 10,
            anti_messages: 17,
            ckpt_nodes: 240,
            max_window: 64,
        });
        let text = rep.text();
        assert!(text.contains("speculative executor (4 threads"));
        assert!(text.contains("windows 30  serial-steps 5  rollbacks 10 (25.0% of attempts)"));
        assert!(text.contains("anti-messages 17  checkpointed-nodes 240  max-window 64 cycles"));
        let doc = Json::parse(&rep.json()).expect("valid json");
        let sp = doc.get("speculative").unwrap();
        assert_eq!(sp.get("windows").unwrap().as_num(), Some(30.0));
        assert_eq!(sp.get("rollbacks").unwrap().as_num(), Some(10.0));
        assert_eq!(sp.get("rollback_rate").unwrap().as_num(), Some(0.25));
        assert_eq!(sp.get("anti_messages").unwrap().as_num(), Some(17.0));
        let base_doc = Json::parse(&Report::new("toy", &r, &s, &p, &sm).json()).unwrap();
        assert!(base_doc.get("speculative").is_none());
    }
}
