//! Observer tee: feed one record stream to several observers.
//!
//! The runtime holds exactly one [`Observer`]; a [`Fanout`] multiplexes
//! that slot so a run can stream a [`crate::Rollup`], a
//! [`crate::blame::Blame`] tracker, and a [`crate::series::Series`]
//! collector simultaneously. Records are forwarded in order to each part
//! (parts see identical streams), and [`Fanout::into_parts`] hands the
//! boxed parts back for downcasting after `take_observer()`.

use hem_core::{Observer, TraceRecord};

/// A tee over boxed observers, fed in insertion order.
#[derive(Default)]
pub struct Fanout {
    parts: Vec<Box<dyn Observer>>,
}

impl Fanout {
    /// An empty tee.
    pub fn new() -> Fanout {
        Fanout::default()
    }

    /// Append an observer; returns `self` for chaining.
    pub fn with(mut self, obs: Box<dyn Observer>) -> Fanout {
        self.parts.push(obs);
        self
    }

    /// The boxed parts, insertion order. Downcast each via `Box<dyn Any>`
    /// (the [`Observer`] supertrait) to recover the concrete types.
    pub fn into_parts(self) -> Vec<Box<dyn Observer>> {
        self.parts
    }
}

impl Observer for Fanout {
    fn on_record(&mut self, rec: &TraceRecord) {
        for p in &mut self.parts {
            p.on_record(rec);
        }
    }

    fn on_flush(&mut self) {
        for p in &mut self.parts {
            p.on_flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blame::Blame;
    use crate::rollup::Rollup;
    use hem_core::{MsgCause, TraceEvent};
    use hem_machine::NodeId;

    #[test]
    fn parts_see_the_stream_and_come_back_out() {
        let fan = Fanout::new()
            .with(Box::new(Rollup::new()))
            .with(Box::new(Blame::new()));
        let mut obs: Box<dyn Observer> = Box::new(fan);
        let recs = [
            TraceRecord {
                at: 1,
                event: TraceEvent::RequestArrived {
                    node: NodeId(0),
                    req: 0,
                },
            },
            TraceRecord {
                at: 2,
                event: TraceEvent::MsgSent {
                    from: NodeId(0),
                    to: NodeId(1),
                    words: 4,
                    cause: MsgCause::Request,
                    req: 1,
                },
            },
            TraceRecord {
                at: 9,
                event: TraceEvent::RequestDone {
                    node: NodeId(0),
                    req: 0,
                },
            },
        ];
        for r in &recs {
            obs.on_record(r);
        }
        obs.on_flush();
        let any: Box<dyn std::any::Any> = obs;
        let fan = any.downcast::<Fanout>().expect("a Fanout");
        let mut parts = fan.into_parts().into_iter();
        let rollup: Box<dyn std::any::Any> = parts.next().unwrap();
        let rollup = rollup.downcast::<Rollup>().expect("a Rollup");
        assert_eq!(rollup.total_sent(), 1);
        let blame: Box<dyn std::any::Any> = parts.next().unwrap();
        let blame = blame.downcast::<Blame>().expect("a Blame");
        assert_eq!(blame.finished().len(), 1);
        assert_eq!(blame.finished()[0].sojourn(), 8);
    }
}
