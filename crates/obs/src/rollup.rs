//! Streaming metrics aggregation over the trace stream.
//!
//! A [`Rollup`] is fed records one at a time — online, as a
//! [`hem_core::Observer`] attached to the runtime, or offline via
//! [`Rollup::from_records`] on a drained trace — and maintains the
//! aggregates the paper's tables are made of: per-method × per-node
//! invocation-path counts, per-link traffic split by cause, and log₂
//! histograms of context residency and touch latency.
//!
//! The per-record path is hot (an attached observer pays it on every
//! event of a machine-sized run — the `observer` group in
//! `sched_throughput` tracks the overhead, and EXPERIMENTS.md records
//! the measured numbers), so the internal storage is dense and flat: method/node/context ids are small dense indices,
//! so cells and open-span stamps live in single stride-indexed vectors
//! (one load, no per-row pointer chase), and links in a small
//! open-addressed table with a last-slot cache (sends are bursty per
//! link). The ordered map views reports consume are derived on demand.

use std::collections::BTreeMap;

use hem_core::{MsgCause, Observer, TraceEvent, TraceRecord};
use hem_machine::Cycles;

use crate::hist::Log2Hist;

/// Per-(method, node) invocation-path counts. Stack completions are split
/// by schema; `par_invokes` counts eager heap contexts; `fallbacks` counts
/// lazy stack→heap unwinds; `shells_adopted` counts CP shell adoptions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MethodCell {
    /// Non-blocking schema stack completions.
    pub stack_nb: u64,
    /// May-block schema stack completions.
    pub stack_mb: u64,
    /// Continuation-passing schema stack completions.
    pub stack_cp: u64,
    /// Speculative inlines.
    pub inlined: u64,
    /// Eager heap-context invocations.
    pub par_invokes: u64,
    /// Stack→heap fallbacks.
    pub fallbacks: u64,
    /// Shell contexts adopted by their caller.
    pub shells_adopted: u64,
}

impl MethodCell {
    /// All invocations that finished on the stack (including inlines).
    pub fn stack_total(&self) -> u64 {
        self.stack_nb + self.stack_mb + self.stack_cp + self.inlined
    }

    /// All invocations that took (or grew) a heap context.
    pub fn heap_total(&self) -> u64 {
        self.par_invokes + self.fallbacks
    }

    /// Total invocations through any path.
    pub fn total(&self) -> u64 {
        self.stack_total() + self.heap_total()
    }

    /// Fraction of invocations completing on the stack (1.0 when empty).
    pub fn stack_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            1.0
        } else {
            self.stack_total() as f64 / t as f64
        }
    }

    /// Fallbacks per stack *attempt* (stack completions + fallbacks): how
    /// often speculation failed.
    pub fn fallback_rate(&self) -> f64 {
        let attempts = self.stack_nb + self.stack_mb + self.stack_cp + self.fallbacks;
        if attempts == 0 {
            0.0
        } else {
            self.fallbacks as f64 / attempts as f64
        }
    }

    fn is_empty(&self) -> bool {
        *self == MethodCell::default()
    }

    fn merge(&mut self, o: &MethodCell) {
        self.stack_nb += o.stack_nb;
        self.stack_mb += o.stack_mb;
        self.stack_cp += o.stack_cp;
        self.inlined += o.inlined;
        self.par_invokes += o.par_invokes;
        self.fallbacks += o.fallbacks;
        self.shells_adopted += o.shells_adopted;
    }
}

/// Per-directed-link traffic, indexed by [`MsgCause`] (`Request`, `Reply`,
/// `Ack`, `Retransmit`, `Multicast`, `Reduce`, `Barrier` in that order).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkCell {
    /// Messages injected, by cause.
    pub msgs: [u64; 7],
    /// Payload words injected, by cause.
    pub words: [u64; 7],
}

/// Index of a cause in [`LinkCell`] arrays.
pub fn cause_idx(c: MsgCause) -> usize {
    match c {
        MsgCause::Request => 0,
        MsgCause::Reply => 1,
        MsgCause::Ack => 2,
        MsgCause::Retransmit => 3,
        MsgCause::Multicast => 4,
        MsgCause::Reduce => 5,
        MsgCause::Barrier => 6,
    }
}

impl LinkCell {
    /// Total messages over the link.
    pub fn total_msgs(&self) -> u64 {
        self.msgs.iter().sum()
    }

    /// Total words over the link.
    pub fn total_words(&self) -> u64 {
        self.words.iter().sum()
    }
}

/// Open-addressed `(from, to) → LinkCell` table. `std::collections::HashMap`
/// pays a SipHash per message record; active link sets are tiny (a few
/// hundred entries even at P = 256), so a Fibonacci-hashed linear-probe
/// table keeps the per-record cost at a few nanoseconds. A one-slot cache
/// short-circuits the probe entirely for back-to-back sends on the same
/// link (boundary exchanges are bursty).
#[derive(Debug, Clone)]
struct LinkTable {
    /// Packed `(from << 32) | to` keys; [`LinkTable::EMPTY`] marks a free
    /// slot (no node id is `u32::MAX` — machines are far smaller).
    keys: Vec<u64>,
    vals: Vec<LinkCell>,
    len: usize,
    /// Slot hit by the previous `entry` call.
    last: usize,
}

impl Default for LinkTable {
    fn default() -> Self {
        Self::new()
    }
}

impl LinkTable {
    const EMPTY: u64 = u64::MAX;

    fn new() -> Self {
        LinkTable {
            keys: vec![Self::EMPTY; 64],
            vals: vec![LinkCell::default(); 64],
            len: 0,
            last: 0,
        }
    }

    #[inline]
    fn slot_of(&self, key: u64) -> usize {
        // Fibonacci hashing; capacity is always a power of two.
        let mask = self.keys.len() - 1;
        let mut i = (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & mask;
        loop {
            let k = self.keys[i];
            if k == key || k == Self::EMPTY {
                return i;
            }
            i = (i + 1) & mask;
        }
    }

    #[inline]
    fn entry(&mut self, from: u32, to: u32) -> &mut LinkCell {
        let key = ((from as u64) << 32) | to as u64;
        if self.keys[self.last] == key {
            return &mut self.vals[self.last];
        }
        let mut i = self.slot_of(key);
        if self.keys[i] == Self::EMPTY {
            if (self.len + 1) * 4 > self.keys.len() * 3 {
                self.grow();
                i = self.slot_of(key);
            }
            self.keys[i] = key;
            self.len += 1;
        }
        self.last = i;
        &mut self.vals[i]
    }

    fn grow(&mut self) {
        let old_keys = std::mem::replace(&mut self.keys, vec![Self::EMPTY; 0]);
        let old_vals = std::mem::take(&mut self.vals);
        self.keys = vec![Self::EMPTY; old_keys.len() * 2];
        self.vals = vec![LinkCell::default(); old_keys.len() * 2];
        self.last = 0;
        for (k, v) in old_keys.into_iter().zip(old_vals) {
            if k != Self::EMPTY {
                let i = self.slot_of(k);
                self.keys[i] = k;
                self.vals[i] = v;
            }
        }
    }

    fn iter(&self) -> impl Iterator<Item = ((u32, u32), &LinkCell)> {
        self.keys
            .iter()
            .zip(&self.vals)
            .filter(|(k, _)| **k != Self::EMPTY)
            .map(|(k, v)| (((k >> 32) as u32, *k as u32), v))
    }

    fn merge(&mut self, other: &LinkTable) {
        for ((from, to), cell) in other.iter() {
            let mine = self.entry(from, to);
            for i in 0..7 {
                mine.msgs[i] += cell.msgs[i];
                mine.words[i] += cell.words[i];
            }
        }
    }
}

/// Marker for "no open span" in the per-`(node, ctx)` span stores.
const NO_SPAN: Cycles = Cycles::MAX;

/// A flat `[node][idx] → Cycles` stamp store (row stride grows by
/// re-layout, which is rare — context slab indices are dense and reused).
#[derive(Debug, Clone, Default)]
struct SpanStore {
    at: Vec<Cycles>,
    stride: usize,
    rows: usize,
}

impl SpanStore {
    #[inline]
    fn slot(&mut self, node: u32, idx: u32) -> &mut Cycles {
        let n = node as usize;
        let i = idx as usize;
        if n >= self.rows || i >= self.stride {
            self.grow(n, i);
        }
        &mut self.at[n * self.stride + i]
    }

    #[cold]
    fn grow(&mut self, n: usize, i: usize) {
        let rows = self.rows.max(n + 1).next_power_of_two();
        let stride = self.stride.max(i + 1).next_power_of_two().max(8);
        let mut at = vec![NO_SPAN; rows * stride];
        for r in 0..self.rows {
            at[r * stride..r * stride + self.stride]
                .copy_from_slice(&self.at[r * self.stride..(r + 1) * self.stride]);
        }
        self.at = at;
        self.stride = stride;
        self.rows = rows;
    }

    fn open(&self) -> usize {
        self.at.iter().filter(|&&a| a != NO_SPAN).count()
    }

    /// Copy every open span from `other` in. Callers guarantee the two
    /// stores never hold an open span for the same `(node, idx)` (shards
    /// partition nodes), so this is conflict-free.
    fn merge(&mut self, other: &SpanStore) {
        for n in 0..other.rows {
            for i in 0..other.stride {
                let at = other.at[n * other.stride + i];
                if at != NO_SPAN {
                    debug_assert_eq!(*self.slot(n as u32, i as u32), NO_SPAN);
                    *self.slot(n as u32, i as u32) = at;
                }
            }
        }
    }
}

/// The aggregates. Iteration-facing views ([`Rollup::per_link`],
/// [`Rollup::methods`]) are ordered, so every report built from a rollup
/// is deterministic.
#[derive(Debug, Default)]
pub struct Rollup {
    /// Invocation-path cells, flat `[node * stride + method]`. Node-major:
    /// the event loop brackets each scheduler step with
    /// `EventStart`/`EventEnd`, so consecutive records overwhelmingly hit
    /// one node's row — a few hundred bytes that stay cache-hot — where
    /// method-major scatters every step's writes across a P-sized column.
    cells: Vec<MethodCell>,
    /// Methods per row of `cells`.
    cell_stride: usize,
    /// Rows in `cells`.
    cell_rows: usize,
    /// Traffic per directed link.
    links: LinkTable,
    /// Messages *handled* per node, by cause index — receiver-side counts.
    handled: Vec<[u64; 7]>,
    /// Continuations lazily materialized, per node.
    conts_created: Vec<u64>,
    /// Context residency (allocation → free), in virtual cycles.
    pub residency: Log2Hist,
    /// Touch latency (suspend → resume), in virtual cycles.
    pub touch_latency: Log2Hist,
    /// Suspensions seen.
    pub suspends: u64,
    /// Lock-deferred invocations seen.
    pub lock_deferrals: u64,
    /// Retransmission timeouts seen.
    pub retransmits: u64,
    /// Duplicate frames suppressed.
    pub dups_suppressed: u64,
    /// Packets the fault plan lost.
    pub msgs_dropped: u64,
    /// Total records observed.
    pub records: u64,
    /// Virtual time of the last record observed (max over nodes' stamps).
    pub last_at: Cycles,
    /// External requests offered (open-system mode): `RequestArrived`
    /// records, i.e. arrivals that passed admission.
    pub requests_arrived: u64,
    /// External requests completed (reply reached the completion log).
    pub requests_completed: u64,
    /// External requests refused by admission control.
    pub requests_shed: u64,
    /// Request sojourn time (arrival → reply), in virtual cycles.
    pub request_latency: Log2Hist,
    /// Arrival stamp of each in-flight request, by request id. Unlike
    /// contexts, request ids are globally unique and never reused, so a
    /// map (not a per-node slab) is the right store.
    req_open: BTreeMap<u64, Cycles>,
    /// Allocation time of each open context (contexts are slab indices,
    /// dense and reused per node).
    open_ctx: SpanStore,
    /// Suspension time of each suspended context.
    suspended_at: SpanStore,
    /// Virtual cycles each node spent dispatching events
    /// (`EventStart`→`EventEnd` spans, which never nest per node). This
    /// is the busy-time profile the sharded executor's profile-guided
    /// shard map consumes — see [`Rollup::node_busy_weights`].
    node_busy: Vec<u64>,
    /// `EventStart` stamp of the event currently open on each node
    /// ([`NO_SPAN`] when idle).
    busy_open: Vec<Cycles>,
}

impl Rollup {
    /// Empty rollup.
    pub fn new() -> Self {
        Self::default()
    }

    /// Aggregate an already-drained trace.
    pub fn from_records<'a>(records: impl IntoIterator<Item = &'a TraceRecord>) -> Self {
        let mut r = Self::new();
        for rec in records {
            r.observe(rec);
        }
        r
    }

    /// Feed one record.
    pub fn observe(&mut self, rec: &TraceRecord) {
        self.records += 1;
        self.last_at = self.last_at.max(rec.at);
        match rec.event {
            TraceEvent::StackComplete {
                node,
                method,
                schema,
            } => {
                let c = self.cell(method.0, node.0);
                match schema {
                    hem_analysis::Schema::NonBlocking => c.stack_nb += 1,
                    hem_analysis::Schema::MayBlock => c.stack_mb += 1,
                    hem_analysis::Schema::ContPassing => c.stack_cp += 1,
                }
            }
            TraceEvent::Inlined { node, method } => self.cell(method.0, node.0).inlined += 1,
            TraceEvent::ParInvoke { node, method, ctx } => {
                self.cell(method.0, node.0).par_invokes += 1;
                *self.open_ctx.slot(node.0, ctx) = rec.at;
            }
            TraceEvent::Fallback { node, method, ctx } => {
                self.cell(method.0, node.0).fallbacks += 1;
                *self.open_ctx.slot(node.0, ctx) = rec.at;
            }
            TraceEvent::ShellAdopted { node, method, .. } => {
                self.cell(method.0, node.0).shells_adopted += 1
            }
            TraceEvent::ContMaterialized { node } => {
                let n = node.0 as usize;
                if self.conts_created.len() <= n {
                    self.conts_created.resize(n + 1, 0);
                }
                self.conts_created[n] += 1;
            }
            TraceEvent::MsgSent {
                from,
                to,
                words,
                cause,
                ..
            } => {
                let link = self.links.entry(from.0, to.0);
                link.msgs[cause_idx(cause)] += 1;
                link.words[cause_idx(cause)] += words;
            }
            TraceEvent::MsgHandled { node, cause, .. } => {
                let n = node.0 as usize;
                if self.handled.len() <= n {
                    self.handled.resize(n + 1, [0; 7]);
                }
                self.handled[n][cause_idx(cause)] += 1;
            }
            TraceEvent::Suspend { node, ctx } => {
                self.suspends += 1;
                *self.suspended_at.slot(node.0, ctx) = rec.at;
            }
            TraceEvent::Resume { node, ctx } => {
                let slot = self.suspended_at.slot(node.0, ctx);
                if *slot != NO_SPAN {
                    self.touch_latency.add(rec.at.saturating_sub(*slot));
                    *slot = NO_SPAN;
                }
            }
            TraceEvent::CtxFreed { node, ctx } => {
                let slot = self.open_ctx.slot(node.0, ctx);
                if *slot != NO_SPAN {
                    self.residency.add(rec.at.saturating_sub(*slot));
                    *slot = NO_SPAN;
                }
            }
            TraceEvent::LockDeferred { .. } => self.lock_deferrals += 1,
            TraceEvent::Retransmit { .. } => self.retransmits += 1,
            TraceEvent::DupSuppressed { .. } => self.dups_suppressed += 1,
            TraceEvent::MsgDropped { .. } => self.msgs_dropped += 1,
            TraceEvent::RequestArrived { req, .. } => {
                self.requests_arrived += 1;
                self.req_open.insert(req, rec.at);
            }
            TraceEvent::RequestDone { req, .. } => {
                self.requests_completed += 1;
                if let Some(t0) = self.req_open.remove(&req) {
                    self.request_latency.add(rec.at.saturating_sub(t0));
                }
            }
            TraceEvent::RequestShed { .. } => self.requests_shed += 1,
            TraceEvent::EventStart { node, .. } => {
                let n = node.0 as usize;
                if self.busy_open.len() <= n {
                    self.busy_open.resize(n + 1, NO_SPAN);
                }
                self.busy_open[n] = rec.at;
            }
            TraceEvent::EventEnd { node } => {
                // `rec.at` is the node clock *after* the step, so the
                // span is the event's whole virtual-time footprint.
                let n = node.0 as usize;
                let start = self.busy_open.get(n).copied().unwrap_or(NO_SPAN);
                if start != NO_SPAN {
                    if self.node_busy.len() <= n {
                        self.node_busy.resize(n + 1, 0);
                    }
                    self.node_busy[n] += rec.at.saturating_sub(start);
                    self.busy_open[n] = NO_SPAN;
                }
            }
            TraceEvent::MsgDuplicated { .. } => {}
        }
    }

    #[inline]
    fn cell(&mut self, method: u32, node: u32) -> &mut MethodCell {
        let m = method as usize;
        let n = node as usize;
        if n >= self.cell_rows || m >= self.cell_stride {
            self.grow_cells(m, n);
        }
        &mut self.cells[n * self.cell_stride + m]
    }

    #[cold]
    fn grow_cells(&mut self, m: usize, n: usize) {
        let rows = self.cell_rows.max(n + 1).next_power_of_two();
        let stride = self.cell_stride.max(m + 1).next_power_of_two().max(8);
        let mut cells = vec![MethodCell::default(); rows * stride];
        for r in 0..self.cell_rows {
            cells[r * stride..r * stride + self.cell_stride]
                .copy_from_slice(&self.cells[r * self.cell_stride..(r + 1) * self.cell_stride]);
        }
        self.cells = cells;
        self.cell_stride = stride;
        self.cell_rows = rows;
    }

    /// Counts for one method summed over all nodes.
    pub fn method_totals(&self, method: u32) -> MethodCell {
        let mut t = MethodCell::default();
        let m = method as usize;
        if m < self.cell_stride {
            for r in 0..self.cell_rows {
                t.merge(&self.cells[r * self.cell_stride + m]);
            }
        }
        t
    }

    /// Every method id that appears in the rollup, ascending.
    pub fn methods(&self) -> Vec<u32> {
        (0..self.cell_stride as u32)
            .filter(|&m| !self.method_totals(m).is_empty())
            .collect()
    }

    /// Grand total over all methods and nodes.
    pub fn grand_total(&self) -> MethodCell {
        let mut t = MethodCell::default();
        for c in &self.cells {
            t.merge(c);
        }
        t
    }

    /// Traffic per directed link `(from, to)`, in link order.
    pub fn per_link(&self) -> BTreeMap<(u32, u32), LinkCell> {
        self.links.iter().map(|(k, v)| (k, *v)).collect()
    }

    /// Messages sent from `node`, by cause index.
    pub fn sent_by_node(&self, node: u32) -> [u64; 7] {
        let mut out = [0u64; 7];
        for ((f, _), l) in self.links.iter() {
            if f == node {
                for (o, m) in out.iter_mut().zip(l.msgs) {
                    *o += m;
                }
            }
        }
        out
    }

    /// Total messages injected (all links, all causes) — equals the
    /// network's `sent` statistic, since every wire injection emits exactly
    /// one `MsgSent`.
    pub fn total_sent(&self) -> u64 {
        self.links.iter().map(|(_, l)| l.total_msgs()).sum()
    }

    /// Messages handled machine-wide, by cause index (receiver side).
    pub fn handled_by_cause(&self) -> [u64; 7] {
        let mut out = [0u64; 7];
        for h in &self.handled {
            for i in 0..7 {
                out[i] += h[i];
            }
        }
        out
    }

    /// Messages handled on `node`, by cause index.
    pub fn handled_on(&self, node: u32) -> [u64; 7] {
        self.handled.get(node as usize).copied().unwrap_or([0; 7])
    }

    /// Total payload words injected, split `(data, ack, retx, coll)` to
    /// line up with `NetStats` (collective legs of all three kinds share
    /// one wire class).
    pub fn words_by_class(&self) -> (u64, u64, u64, u64) {
        let mut data = 0;
        let mut ack = 0;
        let mut retx = 0;
        let mut coll = 0;
        for (_, l) in self.links.iter() {
            data += l.words[0] + l.words[1];
            ack += l.words[2];
            retx += l.words[3];
            coll += l.words[4] + l.words[5] + l.words[6];
        }
        (data, ack, retx, coll)
    }

    /// Fold another rollup into this one — deterministically: every
    /// aggregate is either an order-independent sum (counts, cells, link
    /// traffic, histograms via [`Log2Hist::merge`]) or a max (`last_at`),
    /// so folding per-shard rollups in *any* order reproduces exactly the
    /// rollup a single observer over the merged stream would have built.
    ///
    /// Precondition: the two rollups observed disjoint node sets (as shards
    /// do), so the per-`(node, ctx)` open-span stores cannot conflict —
    /// debug-asserted in the span merge.
    pub fn merge(&mut self, other: &Rollup) {
        for n in 0..other.cell_rows {
            for m in 0..other.cell_stride {
                let c = &other.cells[n * other.cell_stride + m];
                if !c.is_empty() {
                    self.cell(m as u32, n as u32).merge(c);
                }
            }
        }
        self.links.merge(&other.links);
        if self.handled.len() < other.handled.len() {
            self.handled.resize(other.handled.len(), [0; 7]);
        }
        for (mine, theirs) in self.handled.iter_mut().zip(&other.handled) {
            for i in 0..7 {
                mine[i] += theirs[i];
            }
        }
        if self.conts_created.len() < other.conts_created.len() {
            self.conts_created.resize(other.conts_created.len(), 0);
        }
        for (mine, theirs) in self.conts_created.iter_mut().zip(&other.conts_created) {
            *mine += theirs;
        }
        self.residency.merge(&other.residency);
        self.touch_latency.merge(&other.touch_latency);
        self.requests_arrived += other.requests_arrived;
        self.requests_completed += other.requests_completed;
        self.requests_shed += other.requests_shed;
        self.request_latency.merge(&other.request_latency);
        // Request pairing is per-stream: a request whose arrival and
        // completion were observed by *different* rollups contributes no
        // latency sample (the runtime's own observer hook always sees the
        // full merged stream, so this only affects offline splits).
        for (req, t0) in &other.req_open {
            self.req_open.entry(*req).or_insert(*t0);
        }
        self.suspends += other.suspends;
        self.lock_deferrals += other.lock_deferrals;
        self.retransmits += other.retransmits;
        self.dups_suppressed += other.dups_suppressed;
        self.msgs_dropped += other.msgs_dropped;
        self.records += other.records;
        self.last_at = self.last_at.max(other.last_at);
        self.open_ctx.merge(&other.open_ctx);
        self.suspended_at.merge(&other.suspended_at);
        if self.node_busy.len() < other.node_busy.len() {
            self.node_busy.resize(other.node_busy.len(), 0);
        }
        for (mine, theirs) in self.node_busy.iter_mut().zip(&other.node_busy) {
            *mine += theirs;
        }
    }

    /// Virtual cycles node `i` spent dispatching events.
    pub fn node_busy(&self, node: u32) -> u64 {
        self.node_busy.get(node as usize).copied().unwrap_or(0)
    }

    /// Per-node busy time as a dense weight vector for all `p` nodes —
    /// the feedback signal for the sharded executor's profile-guided
    /// partition (`Runtime::set_shard_weights`). Nodes the profile never
    /// saw weigh 0; the partitioner clamps every node to weight ≥ 1, so
    /// a sparse profile still yields a total partition.
    pub fn node_busy_weights(&self, p: u32) -> Vec<u64> {
        (0..p).map(|i| self.node_busy(i)).collect()
    }

    /// Contexts still open (allocated, never freed) when observation ended
    /// — e.g. the root shell of a run that trapped.
    pub fn open_contexts(&self) -> usize {
        self.open_ctx.open()
    }

    /// Requests still in flight (arrived but not completed) when
    /// observation ended — pending work at the horizon of a bounded run.
    pub fn requests_in_flight(&self) -> usize {
        self.req_open.len()
    }

    /// Total lazily-materialized continuations.
    pub fn total_conts(&self) -> u64 {
        self.conts_created.iter().sum()
    }
}

impl Observer for Rollup {
    fn on_record(&mut self, rec: &TraceRecord) {
        self.observe(rec);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hem_machine::NodeId;

    fn rec(at: Cycles, event: TraceEvent) -> TraceRecord {
        TraceRecord { at, event }
    }

    #[test]
    fn residency_and_touch_latency_pair_up() {
        let n = NodeId(0);
        let recs = vec![
            rec(
                10,
                TraceEvent::ParInvoke {
                    node: n,
                    method: hem_ir::MethodId(3),
                    ctx: 7,
                },
            ),
            rec(12, TraceEvent::Suspend { node: n, ctx: 7 }),
            rec(40, TraceEvent::Resume { node: n, ctx: 7 }),
            rec(50, TraceEvent::CtxFreed { node: n, ctx: 7 }),
        ];
        let r = Rollup::from_records(&recs);
        assert_eq!(r.residency.count(), 1);
        assert_eq!(r.residency.max(), 40);
        assert_eq!(r.touch_latency.count(), 1);
        assert_eq!(r.touch_latency.max(), 28);
        assert_eq!(r.open_contexts(), 0);
        assert_eq!(r.method_totals(3).par_invokes, 1);
        assert_eq!(r.methods(), vec![3]);
    }

    #[test]
    fn ctx_id_reuse_is_handled_by_nesting() {
        // The runtime reuses context indices after free; alloc/free pairs
        // for one (node, ctx) never overlap, so the open-span store stays
        // correct across reuse.
        let n = NodeId(1);
        let m = hem_ir::MethodId(0);
        let recs = vec![
            rec(
                0,
                TraceEvent::ParInvoke {
                    node: n,
                    method: m,
                    ctx: 0,
                },
            ),
            rec(5, TraceEvent::CtxFreed { node: n, ctx: 0 }),
            rec(
                100,
                TraceEvent::Fallback {
                    node: n,
                    method: m,
                    ctx: 0,
                },
            ),
            rec(107, TraceEvent::CtxFreed { node: n, ctx: 0 }),
        ];
        let r = Rollup::from_records(&recs);
        assert_eq!(r.residency.count(), 2);
        assert_eq!(r.residency.max(), 7);
        let t = r.method_totals(0);
        assert_eq!((t.par_invokes, t.fallbacks), (1, 1));
    }

    #[test]
    fn links_bucket_by_cause() {
        let recs = vec![
            rec(
                0,
                TraceEvent::MsgSent {
                    from: NodeId(0),
                    to: NodeId(1),
                    words: 4,
                    cause: MsgCause::Request,
                    req: 0,
                },
            ),
            rec(
                3,
                TraceEvent::MsgSent {
                    from: NodeId(1),
                    to: NodeId(0),
                    words: 2,
                    cause: MsgCause::Reply,
                    req: 0,
                },
            ),
            rec(
                4,
                TraceEvent::MsgSent {
                    from: NodeId(0),
                    to: NodeId(1),
                    words: 1,
                    cause: MsgCause::Ack,
                    req: 0,
                },
            ),
        ];
        let r = Rollup::from_records(&recs);
        assert_eq!(r.total_sent(), 3);
        let links = r.per_link();
        assert_eq!(links[&(0, 1)].msgs, [1, 0, 1, 0, 0, 0, 0]);
        assert_eq!(links[&(1, 0)].words[1], 2);
        assert_eq!(r.words_by_class(), (6, 1, 0, 0));
        assert_eq!(r.sent_by_node(0), [1, 0, 1, 0, 0, 0, 0]);
    }

    #[test]
    fn link_table_survives_growth() {
        // Drive the open-addressed table through several resizes and check
        // the aggregate against closed forms.
        let mut r = Rollup::new();
        let p = 40u32; // 1600 links, well past the initial 64-slot table
        for from in 0..p {
            for to in 0..p {
                r.observe(&rec(
                    (from + to) as u64,
                    TraceEvent::MsgSent {
                        from: NodeId(from),
                        to: NodeId(to),
                        words: (from + to) as u64,
                        cause: MsgCause::Request,
                        req: 0,
                    },
                ));
            }
        }
        assert_eq!(r.total_sent(), (p * p) as u64);
        assert_eq!(r.per_link().len(), (p * p) as usize);
        let expect_words: u64 = (0..p)
            .flat_map(|f| (0..p).map(move |t| (f + t) as u64))
            .sum();
        assert_eq!(r.words_by_class().0, expect_words);
        for n in 0..p {
            assert_eq!(r.sent_by_node(n)[0], p as u64);
        }
    }

    #[test]
    fn link_burst_hits_the_slot_cache() {
        // Repeated sends on one link (the common bursty pattern the
        // one-slot cache exists for) aggregate identically to mixed ones.
        let mut r = Rollup::new();
        for i in 0..100u64 {
            r.observe(&rec(
                i,
                TraceEvent::MsgSent {
                    from: NodeId(3),
                    to: NodeId(4),
                    words: 2,
                    cause: MsgCause::Request,
                    req: 0,
                },
            ));
        }
        r.observe(&rec(
            100,
            TraceEvent::MsgSent {
                from: NodeId(4),
                to: NodeId(3),
                words: 1,
                cause: MsgCause::Reply,
                req: 0,
            },
        ));
        let links = r.per_link();
        assert_eq!(links[&(3, 4)].msgs, [100, 0, 0, 0, 0, 0, 0]);
        assert_eq!(links[&(3, 4)].words, [200, 0, 0, 0, 0, 0, 0]);
        assert_eq!(links[&(4, 3)].msgs, [0, 1, 0, 0, 0, 0, 0]);
        assert_eq!(r.total_sent(), 101);
    }

    #[test]
    fn flat_stores_survive_restride() {
        // Growing method ids then node ids (and large ctx indices) forces
        // both flat stores through re-layout; totals must be preserved.
        let mut r = Rollup::new();
        for (m, n, ctx) in [(0u32, 0u32, 0u32), (9, 1, 70), (33, 200, 5), (2, 300, 129)] {
            r.observe(&rec(
                1,
                TraceEvent::ParInvoke {
                    node: NodeId(n),
                    method: hem_ir::MethodId(m),
                    ctx,
                },
            ));
            r.observe(&rec(
                11,
                TraceEvent::CtxFreed {
                    node: NodeId(n),
                    ctx,
                },
            ));
        }
        assert_eq!(r.grand_total().par_invokes, 4);
        assert_eq!(r.residency.count(), 4);
        assert_eq!(r.open_contexts(), 0);
        assert_eq!(r.methods(), vec![0, 2, 9, 33]);
        for m in [0u32, 9, 33, 2] {
            assert_eq!(r.method_totals(m).par_invokes, 1);
        }
    }

    #[test]
    fn sharded_merge_equals_single_stream() {
        // A stream touching several nodes, split by node into two
        // "shard" rollups, must merge back to the single-stream rollup —
        // in either merge order.
        let m = hem_ir::MethodId(2);
        let mut recs = Vec::new();
        for n in 0..4u32 {
            recs.push(rec(
                n as u64,
                TraceEvent::ParInvoke {
                    node: NodeId(n),
                    method: m,
                    ctx: 1,
                },
            ));
            recs.push(rec(
                10 + n as u64,
                TraceEvent::MsgSent {
                    from: NodeId(n),
                    to: NodeId((n + 1) % 4),
                    words: 3,
                    cause: MsgCause::Request,
                    req: 0,
                },
            ));
            recs.push(rec(
                20 + n as u64,
                TraceEvent::MsgHandled {
                    node: NodeId(n),
                    from: NodeId((n + 3) % 4),
                    words: 3,
                    cause: MsgCause::Request,
                    req: 0,
                    deliver: 0,
                    retx: false,
                },
            ));
            recs.push(rec(
                25,
                TraceEvent::Suspend {
                    node: NodeId(n),
                    ctx: 1,
                },
            ));
            recs.push(rec(
                40,
                TraceEvent::Resume {
                    node: NodeId(n),
                    ctx: 1,
                },
            ));
            // Nodes 0 and 1 free their context; 2 and 3 leave it open.
            if n < 2 {
                recs.push(rec(
                    50,
                    TraceEvent::CtxFreed {
                        node: NodeId(n),
                        ctx: 1,
                    },
                ));
            }
        }
        recs.push(rec(60, TraceEvent::ContMaterialized { node: NodeId(3) }));
        let whole = Rollup::from_records(&recs);

        let by_node = |rec: &TraceRecord| -> u32 {
            match rec.event {
                TraceEvent::ParInvoke { node, .. }
                | TraceEvent::MsgHandled { node, .. }
                | TraceEvent::Suspend { node, .. }
                | TraceEvent::Resume { node, .. }
                | TraceEvent::CtxFreed { node, .. }
                | TraceEvent::ContMaterialized { node } => node.0,
                TraceEvent::MsgSent { from, .. } => from.0,
                _ => 0,
            }
        };
        let shard_a = Rollup::from_records(recs.iter().filter(|r| by_node(r) % 2 == 0));
        let shard_b = Rollup::from_records(recs.iter().filter(|r| by_node(r) % 2 == 1));

        for (first, second) in [(&shard_a, &shard_b), (&shard_b, &shard_a)] {
            let mut merged = Rollup::new();
            merged.merge(first);
            merged.merge(second);
            assert_eq!(merged.records, whole.records);
            assert_eq!(merged.last_at, whole.last_at);
            assert_eq!(merged.grand_total(), whole.grand_total());
            assert_eq!(merged.per_link(), whole.per_link());
            assert_eq!(merged.handled_by_cause(), whole.handled_by_cause());
            assert_eq!(merged.residency.summary(), whole.residency.summary());
            assert_eq!(
                merged.touch_latency.summary(),
                whole.touch_latency.summary()
            );
            assert_eq!(merged.suspends, whole.suspends);
            assert_eq!(merged.open_contexts(), whole.open_contexts());
            assert_eq!(merged.total_conts(), whole.total_conts());
            assert_eq!(merged.methods(), whole.methods());
        }
    }

    #[test]
    fn stack_fraction_and_fallback_rate() {
        let mut c = MethodCell {
            stack_mb: 6,
            fallbacks: 2,
            par_invokes: 2,
            ..Default::default()
        };
        assert_eq!(c.total(), 10);
        assert!((c.stack_fraction() - 0.6).abs() < 1e-12);
        assert!((c.fallback_rate() - 0.25).abs() < 1e-12);
        c.inlined += 10;
        assert_eq!(c.stack_total(), 16);
    }
}
