//! Timeline reconstruction from the trace stream.
//!
//! `EventStart`/`EventEnd` pairs delimit scheduler steps; records between
//! a pair belong to the step. Records emitted *outside* any step come from
//! root invocations driven by the harness (`Runtime::call` runs the first
//! activation inline before the dispatch loop starts) and are folded into
//! synthetic *root* steps. Message sends are matched to their handles
//! FIFO per `(from, to, cause)` — exact on fault-free runs, where the
//! interconnect delivers each link's traffic in order and nothing is
//! dropped or duplicated; under an active fault plan the matching is best
//! effort.

use std::collections::{HashMap, VecDeque};

use hem_core::{MsgCause, TraceEvent, TraceRecord};
use hem_ir::MethodId;
use hem_machine::Cycles;

use crate::rollup::cause_idx;

/// Step kinds: the dispatch-loop candidate kinds plus the synthetic root.
pub const KIND_MSG: u8 = 0;
/// Local work (lock grant or ready context).
pub const KIND_LOCAL: u8 = 1;
/// Retransmission-timer sweep.
pub const KIND_TIMERS: u8 = 2;
/// Synthetic: harness-driven root invocation outside the dispatch loop.
pub const KIND_ROOT: u8 = 3;

/// A message arrival consumed by a step, with its matched send when known.
#[derive(Debug, Clone, Copy)]
pub struct MsgIn {
    /// Sender node.
    pub from: u32,
    /// Payload words.
    pub words: u64,
    /// Payload kind.
    pub cause: MsgCause,
    /// Receiver-side handle time.
    pub at: Cycles,
    /// Matched send time on the sender, when the send was in the trace.
    pub sent_at: Option<Cycles>,
}

/// One scheduler step (or synthetic root span) on a node.
#[derive(Debug, Clone)]
pub struct Step {
    /// The node.
    pub node: u32,
    /// `KIND_MSG` / `KIND_LOCAL` / `KIND_TIMERS` / `KIND_ROOT`.
    pub kind: u8,
    /// Clock when the step began.
    pub start: Cycles,
    /// Clock after all work charged in the step.
    pub end: Cycles,
    /// Messages handled within the step.
    pub msgs: Vec<MsgIn>,
}

impl Step {
    /// Human name of the step kind.
    pub fn kind_name(&self) -> &'static str {
        match self.kind {
            KIND_MSG => "handle msg",
            KIND_LOCAL => "local work",
            KIND_TIMERS => "retx timers",
            _ => "root",
        }
    }
}

/// A context's residency span (allocation → free; `end` is `None` when the
/// run finished with the context still live).
#[derive(Debug, Clone, Copy)]
pub struct CtxSpan {
    /// Node.
    pub node: u32,
    /// Context index (reused after free; spans for one index never
    /// overlap).
    pub ctx: u32,
    /// Method, when the allocation event named one.
    pub method: MethodId,
    /// True when created by fallback (vs an eager parallel invocation).
    pub fallback: bool,
    /// Allocation time.
    pub start: Cycles,
    /// Free time.
    pub end: Option<Cycles>,
}

/// A matched send → handle pair.
#[derive(Debug, Clone, Copy)]
pub struct Flow {
    /// Sender.
    pub from: u32,
    /// Send time (sender clock).
    pub sent_at: Cycles,
    /// Receiver.
    pub to: u32,
    /// Handle time (receiver clock).
    pub handled_at: Cycles,
    /// Payload kind.
    pub cause: MsgCause,
    /// Payload words.
    pub words: u64,
}

/// An external request's sojourn through the machine (open-system mode):
/// arrival (offered-load stamp) to completion on the serving node. Shed
/// requests get a zero-length span flagged `shed`.
#[derive(Debug, Clone, Copy)]
pub struct ReqSpan {
    /// Request id.
    pub req: u64,
    /// Target node.
    pub node: u32,
    /// Arrival time (wall stamp of the arrival process — may be ahead of
    /// the node's clock).
    pub start: Cycles,
    /// Completion time on the serving node (`None`: still in flight at
    /// the horizon).
    pub end: Option<Cycles>,
    /// True when admission control refused the request.
    pub shed: bool,
}

/// An interval during which a node had at least one suspended context.
#[derive(Debug, Clone, Copy)]
pub struct SuspendSpan {
    /// Suspend time.
    pub start: Cycles,
    /// Resume time (`None`: still suspended at the end — a deadlocked or
    /// trapped run).
    pub end: Option<Cycles>,
}

/// The reconstructed timeline.
#[derive(Debug)]
pub struct Timeline {
    /// Number of nodes (highest node id seen + 1, or as told by the
    /// caller via [`Timeline::build`]).
    pub n_nodes: usize,
    /// Per-node steps, in start order.
    pub steps: Vec<Vec<Step>>,
    /// Context spans, in allocation order.
    pub ctx_spans: Vec<CtxSpan>,
    /// Matched message flows, in handle order.
    pub flows: Vec<Flow>,
    /// Per-node suspend intervals, in start order (may overlap when
    /// several contexts are suspended at once).
    pub suspends: Vec<Vec<SuspendSpan>>,
    /// External request spans, in arrival order (empty for closed-system
    /// runs).
    pub requests: Vec<ReqSpan>,
    /// Per-node clock at the last record.
    pub node_end: Vec<Cycles>,
    /// Largest node clock seen.
    pub makespan: Cycles,
}

impl Timeline {
    /// Reconstruct a timeline from a drained trace. `n_nodes` must be at
    /// least the machine size (node ids beyond it grow the vectors).
    pub fn build(records: &[TraceRecord], n_nodes: usize) -> Timeline {
        let mut b = Builder::new(n_nodes);
        for r in records {
            b.feed(r);
        }
        b.finish()
    }
}

struct Builder {
    steps: Vec<Vec<Step>>,
    open: Vec<Option<Step>>,
    /// Open step is synthetic root (close it on the next EventStart).
    open_is_root: Vec<bool>,
    ctx_spans: Vec<CtxSpan>,
    open_ctx: HashMap<(u32, u32), usize>,
    flows: Vec<Flow>,
    pending: HashMap<(u32, u32, usize), VecDeque<(Cycles, u64)>>,
    suspends: Vec<Vec<SuspendSpan>>,
    open_susp: HashMap<(u32, u32), usize>,
    requests: Vec<ReqSpan>,
    open_req: HashMap<u64, usize>,
    node_end: Vec<Cycles>,
}

impl Builder {
    fn new(n_nodes: usize) -> Builder {
        Builder {
            steps: vec![Vec::new(); n_nodes],
            open: (0..n_nodes).map(|_| None).collect(),
            open_is_root: vec![false; n_nodes],
            ctx_spans: Vec::new(),
            open_ctx: HashMap::new(),
            flows: Vec::new(),
            pending: HashMap::new(),
            suspends: vec![Vec::new(); n_nodes],
            open_susp: HashMap::new(),
            requests: Vec::new(),
            open_req: HashMap::new(),
            node_end: vec![0; n_nodes],
        }
    }

    fn grow(&mut self, node: u32) {
        let need = node as usize + 1;
        if need > self.steps.len() {
            self.steps.resize_with(need, Vec::new);
            self.open.resize_with(need, || None);
            self.open_is_root.resize(need, false);
            self.suspends.resize_with(need, Vec::new);
            self.node_end.resize(need, 0);
        }
    }

    fn close_open(&mut self, node: u32, end: Cycles) {
        if let Some(mut s) = self.open[node as usize].take() {
            s.end = s.end.max(end);
            self.steps[node as usize].push(s);
            self.open_is_root[node as usize] = false;
        }
    }

    /// Record on-node activity at `at` outside any open step: open (or
    /// extend) a synthetic root step.
    fn touch_root(&mut self, node: u32, at: Cycles) {
        let ni = node as usize;
        match &mut self.open[ni] {
            Some(s) => s.end = s.end.max(at),
            None => {
                self.open[ni] = Some(Step {
                    node,
                    kind: KIND_ROOT,
                    start: at,
                    end: at,
                    msgs: Vec::new(),
                });
                self.open_is_root[ni] = true;
            }
        }
    }

    fn feed(&mut self, rec: &TraceRecord) {
        let node = crate::event_node(&rec.event);
        self.grow(node);
        let ni = node as usize;

        // Arrival-process stamps are *offered load*, not node activity:
        // the arrival time can be ahead of the target node's clock, so
        // they must neither advance `node_end` nor open a root step.
        match rec.event {
            TraceEvent::RequestArrived { node, req } => {
                let idx = self.requests.len();
                self.requests.push(ReqSpan {
                    req,
                    node: node.0,
                    start: rec.at,
                    end: None,
                    shed: false,
                });
                self.open_req.insert(req, idx);
                return;
            }
            TraceEvent::RequestShed { node, req } => {
                self.requests.push(ReqSpan {
                    req,
                    node: node.0,
                    start: rec.at,
                    end: Some(rec.at),
                    shed: true,
                });
                return;
            }
            _ => {}
        }

        self.node_end[ni] = self.node_end[ni].max(rec.at);

        match rec.event {
            TraceEvent::EventStart { node, kind, .. } => {
                // A still-open step (a root span, or a step whose
                // `EventEnd` a trap skipped) ends where its last record
                // was.
                if let Some(prev_end) = self.open[ni].as_ref().map(|s| s.end) {
                    self.close_open(node.0, prev_end);
                }
                self.open[ni] = Some(Step {
                    node: node.0,
                    kind,
                    start: rec.at,
                    end: rec.at,
                    msgs: Vec::new(),
                });
            }
            TraceEvent::EventEnd { .. } => {
                self.close_open(node, rec.at);
            }
            TraceEvent::MsgSent {
                from,
                to,
                words,
                cause,
                ..
            } => {
                self.touch_activity(node, rec.at);
                self.pending
                    .entry((from.0, to.0, cause_idx(cause)))
                    .or_default()
                    .push_back((rec.at, words));
            }
            TraceEvent::MsgHandled {
                node: n,
                from,
                words,
                cause,
                ..
            } => {
                self.touch_activity(node, rec.at);
                // FIFO match; a handle with no same-cause send left tries
                // the retransmit queue (the original was lost, a retried
                // copy delivered the payload).
                let sent_at = self
                    .pop_pending(from.0, n.0, cause_idx(cause))
                    .or_else(|| self.pop_pending(from.0, n.0, cause_idx(MsgCause::Retransmit)))
                    .map(|(at, _)| at);
                if let Some(sent_at) = sent_at {
                    self.flows.push(Flow {
                        from: from.0,
                        sent_at,
                        to: n.0,
                        handled_at: rec.at,
                        cause,
                        words,
                    });
                }
                let m = MsgIn {
                    from: from.0,
                    words,
                    cause,
                    at: rec.at,
                    sent_at,
                };
                match &mut self.open[ni] {
                    Some(s) => s.msgs.push(m),
                    None => unreachable!("touch_activity opened a step"),
                }
            }
            TraceEvent::DupSuppressed { node: n, from } => {
                self.touch_activity(node, rec.at);
                // The duplicate consumed a wire copy; prefer eating a
                // retransmitted send so later real handles still match.
                if self
                    .pop_pending(from.0, n.0, cause_idx(MsgCause::Retransmit))
                    .is_none()
                    && self
                        .pop_pending(from.0, n.0, cause_idx(MsgCause::Request))
                        .is_none()
                {
                    let _ = self.pop_pending(from.0, n.0, cause_idx(MsgCause::Reply));
                }
            }
            TraceEvent::ParInvoke { node, method, ctx }
            | TraceEvent::Fallback { node, method, ctx } => {
                self.touch_activity(node.0, rec.at);
                let fallback = matches!(rec.event, TraceEvent::Fallback { .. });
                let idx = self.ctx_spans.len();
                self.ctx_spans.push(CtxSpan {
                    node: node.0,
                    ctx,
                    method,
                    fallback,
                    start: rec.at,
                    end: None,
                });
                self.open_ctx.insert((node.0, ctx), idx);
            }
            TraceEvent::CtxFreed { node, ctx } => {
                self.touch_activity(node.0, rec.at);
                if let Some(idx) = self.open_ctx.remove(&(node.0, ctx)) {
                    self.ctx_spans[idx].end = Some(rec.at);
                }
            }
            TraceEvent::Suspend { node, ctx } => {
                self.touch_activity(node.0, rec.at);
                let idx = self.suspends[ni].len();
                self.suspends[ni].push(SuspendSpan {
                    start: rec.at,
                    end: None,
                });
                self.open_susp.insert((node.0, ctx), idx);
            }
            TraceEvent::Resume { node, ctx } => {
                self.touch_activity(node.0, rec.at);
                if let Some(idx) = self.open_susp.remove(&(node.0, ctx)) {
                    self.suspends[ni][idx].end = Some(rec.at);
                }
            }
            TraceEvent::RequestDone { req, .. } => {
                self.touch_activity(node, rec.at);
                if let Some(idx) = self.open_req.remove(&req) {
                    self.requests[idx].end = Some(rec.at);
                }
            }
            _ => {
                self.touch_activity(node, rec.at);
            }
        }
    }

    /// On-node activity at `at`: extend the open step, or open a root
    /// step when the node is acting outside the dispatch loop.
    fn touch_activity(&mut self, node: u32, at: Cycles) {
        let ni = node as usize;
        match &mut self.open[ni] {
            Some(s) => s.end = s.end.max(at),
            None => self.touch_root(node, at),
        }
    }

    fn pop_pending(&mut self, from: u32, to: u32, cause: usize) -> Option<(Cycles, u64)> {
        self.pending.get_mut(&(from, to, cause))?.pop_front()
    }

    fn finish(mut self) -> Timeline {
        for ni in 0..self.open.len() {
            if let Some(s) = self.open[ni].take() {
                self.steps[ni].push(s);
            }
        }
        let makespan = self.node_end.iter().copied().max().unwrap_or(0);
        Timeline {
            n_nodes: self.steps.len(),
            steps: self.steps,
            ctx_spans: self.ctx_spans,
            flows: self.flows,
            suspends: self.suspends,
            requests: self.requests,
            node_end: self.node_end,
            makespan,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hem_machine::NodeId;

    fn rec(at: Cycles, event: TraceEvent) -> TraceRecord {
        TraceRecord { at, event }
    }

    #[test]
    fn steps_bracket_their_records() {
        let n = NodeId(0);
        let recs = vec![
            rec(
                5,
                TraceEvent::EventStart {
                    node: n,
                    kind: KIND_LOCAL,
                    req: 0,
                },
            ),
            rec(
                9,
                TraceEvent::StackComplete {
                    node: n,
                    method: MethodId(0),
                    schema: hem_analysis::Schema::MayBlock,
                },
            ),
            rec(12, TraceEvent::EventEnd { node: n }),
        ];
        let tl = Timeline::build(&recs, 1);
        assert_eq!(tl.steps[0].len(), 1);
        let s = &tl.steps[0][0];
        assert_eq!((s.start, s.end, s.kind), (5, 12, KIND_LOCAL));
        assert_eq!(tl.makespan, 12);
    }

    #[test]
    fn root_activity_outside_steps_becomes_a_root_step() {
        let n = NodeId(0);
        let recs = vec![
            rec(
                2,
                TraceEvent::Inlined {
                    node: n,
                    method: MethodId(1),
                },
            ),
            rec(
                7,
                TraceEvent::MsgSent {
                    from: n,
                    to: NodeId(1),
                    words: 3,
                    cause: MsgCause::Request,
                    req: 0,
                },
            ),
            rec(
                10,
                TraceEvent::EventStart {
                    node: n,
                    kind: KIND_MSG,
                    req: 0,
                },
            ),
            rec(11, TraceEvent::EventEnd { node: n }),
        ];
        let tl = Timeline::build(&recs, 2);
        assert_eq!(tl.steps[0].len(), 2);
        assert_eq!(tl.steps[0][0].kind, KIND_ROOT);
        assert_eq!((tl.steps[0][0].start, tl.steps[0][0].end), (2, 7));
        assert_eq!(tl.steps[0][1].kind, KIND_MSG);
    }

    #[test]
    fn sends_match_handles_fifo_per_link_and_cause() {
        let a = NodeId(0);
        let b = NodeId(1);
        let recs = vec![
            rec(
                1,
                TraceEvent::MsgSent {
                    from: a,
                    to: b,
                    words: 2,
                    cause: MsgCause::Request,
                    req: 0,
                },
            ),
            rec(
                4,
                TraceEvent::MsgSent {
                    from: a,
                    to: b,
                    words: 9,
                    cause: MsgCause::Request,
                    req: 0,
                },
            ),
            rec(
                6,
                TraceEvent::EventStart {
                    node: b,
                    kind: KIND_MSG,
                    req: 0,
                },
            ),
            rec(
                6,
                TraceEvent::MsgHandled {
                    node: b,
                    from: a,
                    words: 2,
                    cause: MsgCause::Request,
                    req: 0,
                    deliver: 0,
                    retx: false,
                },
            ),
            rec(8, TraceEvent::EventEnd { node: b }),
            rec(
                9,
                TraceEvent::EventStart {
                    node: b,
                    kind: KIND_MSG,
                    req: 0,
                },
            ),
            rec(
                9,
                TraceEvent::MsgHandled {
                    node: b,
                    from: a,
                    words: 9,
                    cause: MsgCause::Request,
                    req: 0,
                    deliver: 0,
                    retx: false,
                },
            ),
            rec(10, TraceEvent::EventEnd { node: b }),
        ];
        let tl = Timeline::build(&recs, 2);
        assert_eq!(tl.flows.len(), 2);
        assert_eq!((tl.flows[0].sent_at, tl.flows[0].handled_at), (1, 6));
        assert_eq!((tl.flows[1].sent_at, tl.flows[1].handled_at), (4, 9));
        assert_eq!(tl.steps[1][0].msgs[0].sent_at, Some(1));
    }

    #[test]
    fn handle_of_a_lost_original_matches_the_retransmit() {
        let a = NodeId(0);
        let b = NodeId(1);
        let recs = vec![
            rec(
                1,
                TraceEvent::MsgSent {
                    from: a,
                    to: b,
                    words: 5,
                    cause: MsgCause::Request,
                    req: 0,
                },
            ),
            rec(
                2,
                TraceEvent::MsgDropped {
                    from: a,
                    to: b,
                    partitioned: false,
                },
            ),
            rec(
                40,
                TraceEvent::MsgSent {
                    from: a,
                    to: b,
                    words: 5,
                    cause: MsgCause::Retransmit,
                    req: 0,
                },
            ),
            rec(
                45,
                TraceEvent::EventStart {
                    node: b,
                    kind: KIND_MSG,
                    req: 0,
                },
            ),
            rec(
                45,
                TraceEvent::MsgHandled {
                    node: b,
                    from: a,
                    words: 5,
                    cause: MsgCause::Request,
                    req: 0,
                    deliver: 0,
                    retx: false,
                },
            ),
            rec(46, TraceEvent::EventEnd { node: b }),
        ];
        let tl = Timeline::build(&recs, 2);
        // The Request send at t=1 matches first (FIFO in cause class) —
        // best-effort under faults; what matters is *a* flow exists and
        // both queues drain.
        assert_eq!(tl.flows.len(), 1);
        assert_eq!(tl.flows[0].handled_at, 45);
    }

    #[test]
    fn request_spans_pair_up_without_phantom_steps() {
        let n = NodeId(0);
        let recs = vec![
            // Arrival stamped ahead of the node clock: must not move
            // makespan or open a root step.
            rec(100, TraceEvent::RequestArrived { node: n, req: 7 }),
            rec(120, TraceEvent::RequestShed { node: n, req: 8 }),
            rec(
                105,
                TraceEvent::EventStart {
                    node: n,
                    kind: KIND_MSG,
                    req: 0,
                },
            ),
            rec(110, TraceEvent::RequestDone { node: n, req: 7 }),
            rec(110, TraceEvent::EventEnd { node: n }),
        ];
        let tl = Timeline::build(&recs, 1);
        assert_eq!(tl.steps[0].len(), 1);
        assert_eq!(tl.makespan, 110);
        assert_eq!(tl.requests.len(), 2);
        assert_eq!(
            (
                tl.requests[0].start,
                tl.requests[0].end,
                tl.requests[0].shed
            ),
            (100, Some(110), false)
        );
        assert!(tl.requests[1].shed);
    }

    #[test]
    fn suspend_intervals_close_on_resume() {
        let n = NodeId(2);
        let recs = vec![
            rec(3, TraceEvent::Suspend { node: n, ctx: 1 }),
            rec(9, TraceEvent::Resume { node: n, ctx: 1 }),
            rec(11, TraceEvent::Suspend { node: n, ctx: 2 }),
        ];
        let tl = Timeline::build(&recs, 3);
        assert_eq!(tl.suspends[2].len(), 2);
        assert_eq!(tl.suspends[2][0].end, Some(9));
        assert_eq!(tl.suspends[2][1].end, None);
    }
}
