//! Virtual-time series metrics.
//!
//! A streaming [`Observer`] that buckets the trace into fixed
//! virtual-time windows and accumulates, per bucket:
//!
//! * **offered vs completed rate** — request arrivals, sheds, and reply
//!   deliveries counted into the bucket of their timestamp;
//! * **in-flight requests** — admitted minus completed, cumulative at
//!   each bucket's end (an exact integral of the arrival/done events, so
//!   it is order-independent and executor-invariant);
//! * **queue depth** — cycles messages spent waiting between wire
//!   delivery and handling (`MsgHandled.deliver .. at`), time-weighted
//!   across the buckets the wait spans; divided by the window this is
//!   the mean number of waiting messages;
//! * **per-node occupancy** — cycles each node spent inside dispatched
//!   scheduler steps (`EventStart .. EventEnd`), split across buckets.
//!
//! Everything is integer arithmetic over the (executor-invariant) record
//! stream, so the series is bit-identical across executors and thread
//! counts. [`SeriesSummary`] renders to JSON and to Perfetto counter
//! tracks (see [`crate::perfetto::to_json_full`]).

use std::fmt::Write as _;

use hem_core::{Observer, TraceEvent, TraceRecord};

/// Per-bucket accumulators.
#[derive(Debug, Clone, Default)]
struct Bucket {
    arrived: u64,
    done: u64,
    shed: u64,
    queue_wait: u64,
    busy: Vec<u64>,
}

/// The streaming series collector. Build with a window width in cycles,
/// attach as an observer (or replay a drained trace), then call
/// [`Series::summary`].
#[derive(Debug)]
pub struct Series {
    window: u64,
    buckets: Vec<Bucket>,
    nodes: usize,
    open_step: Vec<Option<u64>>,
}

impl Series {
    /// A collector with the given window width (cycles; clamped to ≥ 1).
    pub fn new(window: u64) -> Series {
        Series {
            window: window.max(1),
            buckets: Vec::new(),
            nodes: 0,
            open_step: Vec::new(),
        }
    }

    /// Replay a drained trace.
    pub fn from_records(window: u64, records: &[TraceRecord]) -> Series {
        let mut s = Series::new(window);
        for r in records {
            s.feed(r);
        }
        s
    }

    fn bucket(&mut self, at: u64) -> &mut Bucket {
        let i = (at / self.window) as usize;
        if i >= self.buckets.len() {
            self.buckets.resize_with(i + 1, Bucket::default);
        }
        &mut self.buckets[i]
    }

    fn note_node(&mut self, node: u32) {
        let n = node as usize + 1;
        if n > self.nodes {
            self.nodes = n;
            self.open_step.resize(n, None);
        }
    }

    /// Distribute a half-open span `[start, end)` across the buckets it
    /// overlaps, adding each overlap to the accessor's target field.
    fn add_span(&mut self, start: u64, end: u64, node: Option<u32>) {
        if end <= start {
            return;
        }
        let w = self.window;
        let mut t = start;
        while t < end {
            let bucket_end = (t / w + 1) * w;
            let stop = bucket_end.min(end);
            let b = self.bucket(t);
            match node {
                None => b.queue_wait += stop - t,
                Some(n) => {
                    let n = n as usize;
                    if b.busy.len() <= n {
                        b.busy.resize(n + 1, 0);
                    }
                    b.busy[n] += stop - t;
                }
            }
            t = stop;
        }
    }

    /// Feed one record (the observer hook calls this).
    pub fn feed(&mut self, rec: &TraceRecord) {
        match rec.event {
            TraceEvent::RequestArrived { .. } => self.bucket(rec.at).arrived += 1,
            TraceEvent::RequestDone { .. } => self.bucket(rec.at).done += 1,
            TraceEvent::RequestShed { .. } => self.bucket(rec.at).shed += 1,
            TraceEvent::MsgHandled { deliver, .. } => {
                self.add_span(deliver, rec.at, None);
            }
            TraceEvent::EventStart { node, .. } => {
                self.note_node(node.0);
                self.open_step[node.0 as usize] = Some(rec.at);
            }
            TraceEvent::EventEnd { node } => {
                self.note_node(node.0);
                if let Some(start) = self.open_step[node.0 as usize].take() {
                    self.add_span(start, rec.at, Some(node.0));
                }
            }
            _ => {}
        }
    }

    /// Aggregate into the report section: contiguous buckets from t = 0,
    /// per-node busy vectors padded to the machine size, and the
    /// cumulative in-flight count at each bucket's end.
    pub fn summary(&self) -> SeriesSummary {
        let mut out = SeriesSummary {
            window: self.window,
            nodes: self.nodes,
            buckets: Vec::with_capacity(self.buckets.len()),
        };
        let mut in_flight = 0i64;
        for (i, b) in self.buckets.iter().enumerate() {
            in_flight += b.arrived as i64 - b.done as i64;
            let mut busy = b.busy.clone();
            busy.resize(self.nodes, 0);
            out.buckets.push(SeriesBucket {
                start: i as u64 * self.window,
                arrived: b.arrived,
                done: b.done,
                shed: b.shed,
                in_flight: in_flight.max(0) as u64,
                queue_wait: b.queue_wait,
                busy,
            });
        }
        out
    }
}

impl Observer for Series {
    fn on_record(&mut self, rec: &TraceRecord) {
        self.feed(rec);
    }
}

/// One window of the series.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeriesBucket {
    /// Bucket start (virtual time).
    pub start: u64,
    /// Requests admitted into the machine in this window.
    pub arrived: u64,
    /// Requests whose reply was delivered in this window.
    pub done: u64,
    /// Requests shed in this window (offered = arrived + shed).
    pub shed: u64,
    /// Admitted-minus-completed, cumulative at the window's end.
    pub in_flight: u64,
    /// Cycles messages spent between delivery and handling inside this
    /// window; `queue_wait / window` is the mean waiting-message count.
    pub queue_wait: u64,
    /// Cycles each node spent inside dispatched steps in this window
    /// (length = machine size).
    pub busy: Vec<u64>,
}

impl SeriesBucket {
    /// Total busy cycles across all nodes in this window.
    pub fn busy_total(&self) -> u64 {
        self.busy.iter().sum()
    }
}

/// The aggregated series a report carries.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SeriesSummary {
    /// Window width (cycles).
    pub window: u64,
    /// Machine size (nodes observed dispatching).
    pub nodes: usize,
    /// Contiguous windows from t = 0.
    pub buckets: Vec<SeriesBucket>,
}

impl SeriesSummary {
    /// Render the text section (one row per window).
    pub fn text(&self) -> String {
        let mut o = String::new();
        let _ = writeln!(
            o,
            "series (window {} cycles; queue-wait and busy are cycle integrals):",
            self.window
        );
        let _ = writeln!(
            o,
            "  {:>10} {:>8} {:>8} {:>6} {:>9} {:>12} {:>12}",
            "t", "arrived", "done", "shed", "in-flight", "queue-wait", "busy-total"
        );
        for b in &self.buckets {
            let _ = writeln!(
                o,
                "  {:>10} {:>8} {:>8} {:>6} {:>9} {:>12} {:>12}",
                b.start,
                b.arrived,
                b.done,
                b.shed,
                b.in_flight,
                b.queue_wait,
                b.busy_total()
            );
        }
        o
    }

    /// Render the JSON section (the value of the report's `"series"` key).
    pub fn json(&self) -> String {
        let mut o = String::new();
        let _ = write!(
            o,
            "{{\"window\":{},\"nodes\":{},\"buckets\":[",
            self.window, self.nodes
        );
        for (i, b) in self.buckets.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            let _ = write!(
                o,
                "{{\"t\":{},\"arrived\":{},\"done\":{},\"shed\":{},\"in_flight\":{},\
                 \"queue_wait\":{},\"busy\":[",
                b.start, b.arrived, b.done, b.shed, b.in_flight, b.queue_wait
            );
            for (j, w) in b.busy.iter().enumerate() {
                if j > 0 {
                    o.push(',');
                }
                let _ = write!(o, "{w}");
            }
            o.push_str("]}");
        }
        o.push_str("]}");
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hem_core::{MsgCause, TraceEvent, TraceRecord};
    use hem_machine::NodeId;

    fn rec(at: u64, event: TraceEvent) -> TraceRecord {
        TraceRecord { at, event }
    }

    fn stream() -> Vec<TraceRecord> {
        vec![
            rec(
                10,
                TraceEvent::RequestArrived {
                    node: NodeId(0),
                    req: 0,
                },
            ),
            rec(
                15,
                TraceEvent::EventStart {
                    node: NodeId(0),
                    kind: 0,
                    req: 1,
                },
            ),
            // Message waited 90..115 across the 100-cycle bucket edge.
            rec(
                115,
                TraceEvent::MsgHandled {
                    node: NodeId(0),
                    from: NodeId(1),
                    words: 3,
                    cause: MsgCause::Request,
                    req: 1,
                    deliver: 90,
                    retx: false,
                },
            ),
            rec(130, TraceEvent::EventEnd { node: NodeId(0) }),
            rec(
                150,
                TraceEvent::RequestDone {
                    node: NodeId(0),
                    req: 0,
                },
            ),
            rec(
                160,
                TraceEvent::RequestShed {
                    node: NodeId(0),
                    req: 1,
                },
            ),
        ]
    }

    #[test]
    fn buckets_count_and_spans_split_at_window_edges() {
        let s = Series::from_records(100, &stream()).summary();
        assert_eq!(s.window, 100);
        assert_eq!(s.nodes, 1);
        assert_eq!(s.buckets.len(), 2);
        let (b0, b1) = (&s.buckets[0], &s.buckets[1]);
        assert_eq!((b0.arrived, b0.done, b0.shed), (1, 0, 0));
        assert_eq!((b1.arrived, b1.done, b1.shed), (0, 1, 1));
        assert_eq!(b0.in_flight, 1, "arrived, not yet done");
        assert_eq!(b1.in_flight, 0, "done in bucket 1");
        // Queue wait 90..115 splits 10 / 15 across the edge.
        assert_eq!(b0.queue_wait, 10);
        assert_eq!(b1.queue_wait, 15);
        // Step 15..130 splits 85 / 30.
        assert_eq!(b0.busy, vec![85]);
        assert_eq!(b1.busy, vec![30]);
    }

    #[test]
    fn json_parses_and_matches_buckets() {
        let s = Series::from_records(100, &stream()).summary();
        let doc = crate::json::Json::parse(&s.json()).expect("valid json");
        assert_eq!(doc.get("window").unwrap().as_num(), Some(100.0));
        let buckets = doc.get("buckets").unwrap().as_arr().unwrap();
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[1].get("queue_wait").unwrap().as_num(), Some(15.0));
        let busy = buckets[0].get("busy").unwrap().as_arr().unwrap();
        assert_eq!(busy[0].as_num(), Some(85.0));
        let text = s.text();
        assert!(text.contains("in-flight"));
    }

    #[test]
    fn observer_and_replay_agree() {
        let recs = stream();
        let mut obs = Series::new(64);
        for r in &recs {
            obs.on_record(r);
        }
        obs.on_flush();
        assert_eq!(
            obs.summary(),
            Series::from_records(64, &recs).summary(),
            "streaming and replay see the same series"
        );
    }

    #[test]
    fn window_is_clamped_to_one() {
        let s = Series::new(0);
        assert_eq!(s.window, 1);
    }
}
