//! Offline stand-in for the `proptest` crate.
//!
//! The build container cannot reach crates.io, so this vendors the slice of
//! the proptest 1.x API the workspace's property tests use: the `proptest!`
//! macro, `Strategy` with `prop_map`, range and tuple strategies,
//! `collection::vec`, `any::<bool>()`, `ProptestConfig::with_cases`, and the
//! `prop_assert*` macros. No shrinking — a failing case panics with the
//! case number and generated inputs, which together with the deterministic
//! per-case RNG is enough to reproduce and debug.

use std::ops::{Range, RangeInclusive};

/// Default base seed when `HYBRID_TEST_SEED` is unset (keeps historical
/// streams bit-identical).
const DEFAULT_BASE_SEED: u64 = 0xD1B54A32D192ED03;

/// The base seed all per-case RNGs derive from: the `HYBRID_TEST_SEED`
/// environment variable when set (so a CI soak or a failure reproduction
/// can pin the whole stream), else [`DEFAULT_BASE_SEED`]. Read once.
pub fn base_seed() -> u64 {
    static SEED: std::sync::OnceLock<u64> = std::sync::OnceLock::new();
    *SEED.get_or_init(|| match std::env::var("HYBRID_TEST_SEED") {
        Ok(s) => s
            .trim()
            .parse()
            .expect("HYBRID_TEST_SEED must be an unsigned integer"),
        Err(_) => DEFAULT_BASE_SEED,
    })
}

/// Deterministic per-case RNG (SplitMix64 over the base seed).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn for_case(case: u64) -> Self {
        // Decorrelate consecutive case indices.
        TestRng {
            state: case.wrapping_mul(0x9E3779B97F4A7C15) ^ base_seed(),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generator of values of type `Value`. Unlike real proptest there is no
/// value tree or shrinking; `generate` draws one value directly.
pub trait Strategy {
    type Value: std::fmt::Debug + Clone;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: std::fmt::Debug + Clone,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: std::fmt::Debug + Clone,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: std::fmt::Debug + Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy on empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! int_range_inclusive_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "strategy on empty range");
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (*self.start() as i128 + off) as $t
            }
        }
    )*};
}

int_range_inclusive_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "strategy on empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+ );)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
}

/// `any::<T>()` support (only the types the workspace generates).
pub trait Arbitrary: std::fmt::Debug + Clone {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for vectors whose length is drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }
}

/// Number-of-cases knob (the only config field the workspace sets).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// The `proptest!` block: expands each `fn name(arg in strategy, ...) {}`
/// into a `#[test]` that runs `cases` deterministic draws. A failing draw
/// reports its case number and the generated inputs (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            for case in 0..cfg.cases as u64 {
                let mut rng = $crate::TestRng::for_case(case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let result = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| $body),
                );
                if let Err(e) = result {
                    eprintln!(
                        "proptest case {case} of {} (base seed {seed}) failed \
                         with inputs: {inputs}\n\
                         reproduce with: HYBRID_TEST_SEED={seed} cargo test {}",
                        stringify!($name),
                        stringify!($name),
                        seed = $crate::base_seed(),
                    );
                    ::std::panic::resume_unwind(e);
                }
            }
        }
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_vecs(
            x in 3u32..10,
            v in crate::collection::vec((0u64..5, any::<bool>()), 0..4),
        ) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(v.len() < 4);
            for (n, _) in &v {
                prop_assert!(*n < 5);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn prop_map_applies(y in (1u8..3).prop_map(|v| v * 10)) {
            prop_assert!(y == 10 || y == 20);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let s = (0u64..1000, 5i64..9);
        let a: Vec<_> = (0..20)
            .map(|c| s.generate(&mut crate::TestRng::for_case(c)))
            .collect();
        let b: Vec<_> = (0..20)
            .map(|c| s.generate(&mut crate::TestRng::for_case(c)))
            .collect();
        assert_eq!(a, b);
    }
}
