//! Offline stand-in for the `criterion` crate.
//!
//! The build container cannot reach crates.io, so this vendors the slice of
//! the criterion 0.5 API the workspace's benches use: `Criterion`,
//! `benchmark_group` with `sample_size`/`measurement_time`/`throughput`,
//! `bench_function` / `bench_with_input`, `Bencher::iter`, `BenchmarkId`,
//! `Throughput`, `black_box`, and the `criterion_group!`/`criterion_main!`
//! macros. Timing is a plain wall-clock median over the sample count — no
//! statistical analysis, HTML reports, or baseline comparison, but the
//! printed numbers are real and comparable run to run.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, like `criterion::black_box`.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark identifier: `group/function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    pub fn new<F: fmt::Display, P: fmt::Display>(function: F, parameter: P) -> Self {
        BenchmarkId {
            function: Some(function.to_string()),
            parameter: Some(parameter.to_string()),
        }
    }

    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.function, &self.parameter) {
            (Some(fun), Some(p)) => write!(f, "{fun}/{p}"),
            (Some(fun), None) => write!(f, "{fun}"),
            (None, Some(p)) => write!(f, "{p}"),
            (None, None) => write!(f, "?"),
        }
    }
}

/// Throughput annotation: turns per-iteration time into a rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Runs the measured closure and records per-iteration wall time.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up, then timed samples.
        black_box(f());
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
        }
    }

    fn median(&mut self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.sort_unstable();
        self.samples[self.samples.len() / 2]
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the shim sizes runs by sample count.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        self.report(&id.to_string(), b.median());
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        self.report(&id.to_string(), b.median());
        self
    }

    fn report(&self, id: &str, median: Duration) {
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if !median.is_zero() => {
                format!("  {:>12.0} elem/s", n as f64 / median.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) if !median.is_zero() => {
                format!("  {:>12.0} B/s", n as f64 / median.as_secs_f64())
            }
            _ => String::new(),
        };
        println!("{}/{:<40} median {:>12.3?}{}", self.name, id, median, rate);
    }

    pub fn finish(&mut self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            throughput: None,
            _parent: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group(id.to_string())
            .bench_function("bench", f);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3)
            .throughput(Throughput::Elements(100))
            .measurement_time(Duration::from_millis(1));
        let mut runs = 0u32;
        g.bench_with_input(BenchmarkId::new("f", 7), &7u32, |b, &x| {
            b.iter(|| {
                runs += 1;
                x * 2
            });
        });
        g.finish();
        // warm-up + 3 samples
        assert_eq!(runs, 4);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", "p").to_string(), "f/p");
        assert_eq!(BenchmarkId::from_parameter("p").to_string(), "p");
    }
}
