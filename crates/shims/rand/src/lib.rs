//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access to crates.io, so the workspace
//! vendors the tiny slice of the rand 0.8 API it actually uses: a seedable
//! deterministic small RNG plus `gen_range` over integer/float ranges and
//! `gen_bool`. The generator is SplitMix64 — statistically fine for test-data
//! and layout scrambling, and fully deterministic from the seed, which is all
//! the deterministic-simulation harnesses require. Streams differ from the
//! real `rand::rngs::SmallRng`; nothing in the workspace depends on the
//! exact stream, only on seed-reproducibility.

use std::ops::Range;

/// Subset of `rand::Rng` used by the workspace.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    /// Uniform value in `[0, 1)` with 53 random bits.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform sample from a half-open range.
    fn gen_range<R>(&mut self, range: R) -> R::Output
    where
        R: SampleRange,
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        self.next_f64() < p
    }
}

/// Subset of `rand::SeedableRng` used by the workspace.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types a half-open range of which can be uniformly sampled.
pub trait SampleUniform: Copy {
    fn sample_in<R: Rng>(range: Range<Self>, rng: &mut R) -> Self;
}

/// Half-open ranges a value can be uniformly sampled from. The blanket impl
/// over [`SampleUniform`] (mirroring real rand) lets type inference unify
/// the output type with the surrounding expression.
pub trait SampleRange {
    type Output;
    fn sample<R: Rng>(self, rng: &mut R) -> Self::Output;
}

impl<T: SampleUniform> SampleRange for Range<T> {
    type Output = T;
    fn sample<R: Rng>(self, rng: &mut R) -> T {
        T::sample_in(self, rng)
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: Rng>(range: Range<$t>, rng: &mut R) -> $t {
                assert!(range.start < range.end, "gen_range on empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                // Modulo reduction: span is tiny relative to 2^64 everywhere
                // this shim is used, so the bias is negligible.
                let off = (rng.next_u64() as u128 % span) as i128;
                (range.start as i128 + off) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_in<R: Rng>(range: Range<f64>, rng: &mut R) -> f64 {
        assert!(range.start < range.end, "gen_range on empty range");
        range.start + rng.next_f64() * (range.end - range.start)
    }
}

impl SampleUniform for f32 {
    fn sample_in<R: Rng>(range: Range<f32>, rng: &mut R) -> f32 {
        assert!(range.start < range.end, "gen_range on empty range");
        range.start + rng.next_f64() as f32 * (range.end - range.start)
    }
}

/// Test-harness hook: the seed from the `HYBRID_TEST_SEED` environment
/// variable, if set. Harnesses that scramble layouts or generate inputs
/// can fold this in so one env var re-seeds an entire fault-soak run;
/// `None` means "use your built-in default" (keeping unset-env streams
/// bit-identical to historical runs). Read once.
pub fn env_seed() -> Option<u64> {
    static SEED: std::sync::OnceLock<Option<u64>> = std::sync::OnceLock::new();
    *SEED.get_or_init(|| {
        std::env::var("HYBRID_TEST_SEED").ok().map(|s| {
            s.trim()
                .parse()
                .expect("HYBRID_TEST_SEED must be an unsigned integer")
        })
    })
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic small-state RNG (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let i = r.gen_range(3u32..17);
            assert!((3..17).contains(&i));
            let f = r.gen_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&f));
            let n = r.gen_range(-10i64..-2);
            assert!((-10..-2).contains(&n));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(1);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((1500..3500).contains(&hits), "p=0.25 gave {hits}/10000");
    }
}
