//! # hem-analysis — interprocedural schema selection
//!
//! The Concert compiler performs a global flow analysis that conservatively
//! determines the *blocking* and *continuation* requirements of every
//! method, and uses the result to pick the cheapest sequential invocation
//! schema (paper §3.2):
//!
//! * **Non-blocking** — provable that the method and all of its descendant
//!   calls cannot block ⇒ a straight C call;
//! * **May-block** — blocking cannot be ruled out, but the callee never
//!   manipulates its continuation ⇒ lazy context allocation;
//! * **Continuation-passing** — the callee may require the continuation of
//!   a future in the caller's (as yet uncreated) context ⇒ lazy context
//!   *and* continuation creation.
//!
//! Because only one sequential version of each method is generated, the
//! classification fixes the calling convention at every call site.
//!
//! This crate reproduces that analysis over the `hem-ir` program
//! representation: [`callgraph`] builds the static call graph,
//! [`flow`] runs the may-block fixpoint and the syntactic
//! requires-continuation check, and [`schema`] folds both into a
//! [`SchemaMap`], optionally restricted to a subset of the interface
//! hierarchy (Table 3's "1 interface" / "2 interfaces" / "3 interfaces"
//! configurations).

#![warn(missing_docs)]

pub mod callgraph;
pub mod flow;
pub mod inline;
pub mod schema;

pub use callgraph::CallGraph;
pub use flow::FlowFacts;
pub use inline::{mark_inlinable, InlinePolicy};
pub use schema::{InterfaceSet, Schema, SchemaMap};

use hem_ir::Program;

/// The complete analysis result for a program.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Static call graph.
    pub callgraph: CallGraph,
    /// May-block and requires-continuation facts.
    pub facts: FlowFacts,
}

impl Analysis {
    /// Analyze a validated program.
    pub fn analyze(program: &Program) -> Self {
        let callgraph = CallGraph::build(program);
        let facts = FlowFacts::compute(program, &callgraph);
        Analysis { callgraph, facts }
    }

    /// Select sequential invocation schemas under the given interface set.
    pub fn schemas(&self, interfaces: InterfaceSet) -> SchemaMap {
        SchemaMap::select(&self.facts, interfaces)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hem_ir::{BinOp, ProgramBuilder};

    #[test]
    fn end_to_end_fib_is_nonblocking() {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("Math", false);
        let fib = pb.declare(c, "fib", 1);
        pb.define(fib, |mb| {
            let n = mb.arg(0);
            let small = mb.binl(BinOp::Lt, n, 2);
            mb.if_else(
                small,
                |mb| mb.reply(n),
                |mb| {
                    let me = mb.self_ref();
                    let n1 = mb.binl(BinOp::Sub, n, 1);
                    let s1 = mb.invoke_local(me, fib, &[n1.into()]);
                    let v = mb.touch_get(s1);
                    mb.reply(v);
                },
            );
        });
        let p = pb.finish();
        let a = Analysis::analyze(&p);
        let schemas = a.schemas(InterfaceSet::Full);
        assert_eq!(schemas.of(fib), Schema::NonBlocking);
    }
}
