//! Static call graph construction.
//!
//! Our IR names callees directly by [`MethodId`] (Concert's concrete type
//! inference resolves virtual dispatch before this point — see Plevyak &
//! Chien, OOPSLA '94 — so a monomorphic graph is the faithful input here).
//! Each edge records whether the site is a plain invocation or a forward,
//! and the compiler's locality knowledge at the site.

use hem_ir::{Instr, LocalityHint, MethodId, Program};

/// The kind of a call edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallKind {
    /// `Invoke`: result future in the caller.
    Invoke,
    /// `Forward`: the caller's continuation is passed along.
    Forward,
}

/// One call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallSite {
    /// Caller method.
    pub caller: MethodId,
    /// Instruction index within the caller.
    pub at: usize,
    /// Callee method.
    pub callee: MethodId,
    /// Invoke or forward.
    pub kind: CallKind,
    /// Compiler locality knowledge at the site.
    pub hint: LocalityHint,
}

/// A static call graph: per-method outgoing edges plus reverse edges for
/// the fixpoint worklist.
#[derive(Debug, Clone, Default)]
pub struct CallGraph {
    /// Outgoing call sites, indexed by caller method.
    pub callees: Vec<Vec<CallSite>>,
    /// Incoming caller methods, indexed by callee method (deduplicated).
    pub callers: Vec<Vec<MethodId>>,
}

impl CallGraph {
    /// Build the call graph of a program.
    pub fn build(program: &Program) -> Self {
        let n = program.methods.len();
        let mut callees: Vec<Vec<CallSite>> = vec![Vec::new(); n];
        let mut callers: Vec<Vec<MethodId>> = vec![Vec::new(); n];
        for (mi, m) in program.methods.iter().enumerate() {
            let caller = MethodId(mi as u32);
            for (at, ins) in m.body.iter().enumerate() {
                let (callee, kind, hint) = match ins {
                    Instr::Invoke { method, hint, .. } => (*method, CallKind::Invoke, *hint),
                    Instr::Forward { method, hint, .. } => (*method, CallKind::Forward, *hint),
                    // Collective legs run the member method on whatever node
                    // hosts each member: an Invoke-like edge with unknown
                    // locality. (Barriers run no method — no edge.)
                    Instr::Multicast { method, .. } | Instr::Reduce { method, .. } => {
                        (*method, CallKind::Invoke, LocalityHint::Unknown)
                    }
                    _ => continue,
                };
                callees[mi].push(CallSite {
                    caller,
                    at,
                    callee,
                    kind,
                    hint,
                });
                if !callers[callee.idx()].contains(&caller) {
                    callers[callee.idx()].push(caller);
                }
            }
        }
        CallGraph { callees, callers }
    }

    /// Number of methods in the graph.
    pub fn len(&self) -> usize {
        self.callees.len()
    }

    /// True when the graph has no methods.
    pub fn is_empty(&self) -> bool {
        self.callees.is_empty()
    }

    /// Call sites out of `m`.
    pub fn sites(&self, m: MethodId) -> &[CallSite] {
        &self.callees[m.idx()]
    }

    /// Methods that call `m`.
    pub fn callers_of(&self, m: MethodId) -> &[MethodId] {
        &self.callers[m.idx()]
    }

    /// Methods reachable from `root` (including `root`), in discovery order.
    pub fn reachable(&self, root: MethodId) -> Vec<MethodId> {
        let mut seen = vec![false; self.len()];
        let mut order = Vec::new();
        let mut stack = vec![root];
        while let Some(m) = stack.pop() {
            if std::mem::replace(&mut seen[m.idx()], true) {
                continue;
            }
            order.push(m);
            for s in self.sites(m) {
                if !seen[s.callee.idx()] {
                    stack.push(s.callee);
                }
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hem_ir::{LocalityHint, ProgramBuilder};

    fn chain_program() -> (Program, MethodId, MethodId, MethodId) {
        // a -> b (invoke), b -> c (forward), c leaf.
        let mut pb = ProgramBuilder::new();
        let cls = pb.class("C", false);
        let a = pb.declare(cls, "a", 0);
        let b = pb.declare(cls, "b", 0);
        let c = pb.declare(cls, "c", 0);
        pb.define(a, |mb| {
            let me = mb.self_ref();
            let s = mb.invoke_into(me, b, &[]);
            let v = mb.touch_get(s);
            mb.reply(v);
        });
        pb.define(b, |mb| {
            let me = mb.self_ref();
            mb.forward(me, c, &[], LocalityHint::AlwaysLocal);
        });
        pb.define(c, |mb| mb.reply(7i64));
        (pb.finish(), a, b, c)
    }

    #[test]
    fn edges_and_kinds() {
        let (p, a, b, c) = chain_program();
        let g = CallGraph::build(&p);
        assert_eq!(g.len(), 3);
        assert_eq!(g.sites(a).len(), 1);
        assert_eq!(g.sites(a)[0].callee, b);
        assert_eq!(g.sites(a)[0].kind, CallKind::Invoke);
        assert_eq!(g.sites(a)[0].hint, LocalityHint::Unknown);
        assert_eq!(g.sites(b)[0].callee, c);
        assert_eq!(g.sites(b)[0].kind, CallKind::Forward);
        assert_eq!(g.sites(b)[0].hint, LocalityHint::AlwaysLocal);
        assert!(g.sites(c).is_empty());
    }

    #[test]
    fn reverse_edges() {
        let (p, a, b, c) = chain_program();
        let g = CallGraph::build(&p);
        assert_eq!(g.callers_of(b), &[a]);
        assert_eq!(g.callers_of(c), &[b]);
        assert!(g.callers_of(a).is_empty());
    }

    #[test]
    fn reachability() {
        let (p, a, b, c) = chain_program();
        let g = CallGraph::build(&p);
        let r = g.reachable(a);
        assert!(r.contains(&a) && r.contains(&b) && r.contains(&c));
        let r = g.reachable(c);
        assert_eq!(r, vec![c]);
    }

    #[test]
    fn recursive_edges_deduplicated_in_callers() {
        let mut pb = ProgramBuilder::new();
        let cls = pb.class("C", false);
        let f = pb.declare(cls, "f", 1);
        pb.define(f, |mb| {
            let me = mb.self_ref();
            let s1 = mb.invoke_local(me, f, &[mb.arg(0).into()]);
            let s2 = mb.invoke_local(me, f, &[mb.arg(0).into()]);
            mb.touch(&[s1, s2]);
            mb.reply_nil();
        });
        let p = pb.finish();
        let g = CallGraph::build(&p);
        assert_eq!(g.sites(f).len(), 2);
        assert_eq!(g.callers_of(f), &[f]); // deduplicated
    }
}
