//! May-block and requires-continuation flow analyses.
//!
//! **Requires-continuation** is syntactic and local: a method needs its own
//! continuation iff it contains a `Forward` (it passes the continuation
//! along) or a `StoreCont` (it captures the continuation into a data
//! structure). Note that merely *calling* a continuation-passing method
//! does not make the caller continuation-passing — the caller supplies
//! `caller_info` describing itself, which is a property of the call site,
//! not of the caller's own interface (paper Fig. 7: only methods on the
//! forwarding chain are CP).
//!
//! **May-block** is a transitive fixpoint over the call graph. A method may
//! block — i.e. its sequential version may have to unwind into the heap —
//! iff it contains an `Invoke` that can suspend or fall back:
//!
//! 1. the target's location is unknown at compile time (it may be remote,
//!    and a remote request forces lazy creation of the caller's context so
//!    the reply has somewhere to land);
//! 2. the target class carries an implicit lock (the object may be busy);
//! 3. the callee itself may block (the caller must be able to absorb a
//!    `Blocked` return and link a continuation into the callee's lazily
//!    created context), or the callee may consume its continuation (the
//!    caller must be able to absorb a lazily created shell context).
//!
//! `Touch` contributes nothing extra: under rules 1–3 every invocation that
//! feeds a touched slot either completed synchronously on the stack (slot
//! already full) or already triggered a fallback.

use crate::callgraph::{CallGraph, CallKind};
use hem_ir::{Instr, LocalityHint, MethodId, Program};

/// The computed facts, indexed by method.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowFacts {
    /// Whether the method's sequential version may have to unwind.
    pub may_block: Vec<bool>,
    /// Whether the method may require its own continuation.
    pub requires_cont: Vec<bool>,
}

impl FlowFacts {
    /// Run both analyses to fixpoint.
    pub fn compute(program: &Program, graph: &CallGraph) -> Self {
        let n = program.methods.len();

        // Requires-continuation: purely syntactic.
        let requires_cont: Vec<bool> = program
            .methods
            .iter()
            .map(|m| {
                m.body
                    .iter()
                    .any(|i| matches!(i, Instr::Forward { .. } | Instr::StoreCont { .. }))
            })
            .collect();

        // May-block: monotone fixpoint with a worklist seeded by the
        // syntactic triggers (rules 1 and 2).
        let mut may_block = vec![false; n];
        let mut work: Vec<MethodId> = Vec::new();
        for (mi, _) in program.methods.iter().enumerate() {
            let m = MethodId(mi as u32);
            if Self::local_trigger(program, graph, m, &may_block, &requires_cont) {
                may_block[mi] = true;
                work.push(m);
            }
        }
        while let Some(m) = work.pop() {
            for &caller in graph.callers_of(m) {
                if may_block[caller.idx()] {
                    continue;
                }
                if Self::local_trigger(program, graph, caller, &may_block, &requires_cont) {
                    may_block[caller.idx()] = true;
                    work.push(caller);
                }
            }
        }

        FlowFacts {
            may_block,
            requires_cont,
        }
    }

    /// Does `m` currently have a blocking trigger, given the facts so far?
    fn local_trigger(
        program: &Program,
        graph: &CallGraph,
        m: MethodId,
        may_block: &[bool],
        requires_cont: &[bool],
    ) -> bool {
        // A barrier's slot resolves only after wire round trips to every
        // member node, so touching it can never complete on the stack.
        // (Multicast/Reduce are covered by their Unknown-hint call edges.)
        if program
            .method(m)
            .body
            .iter()
            .any(|i| matches!(i, Instr::Barrier { .. }))
        {
            return true;
        }
        graph.sites(m).iter().any(|s| {
            // Forwards never block the forwarder itself: the method
            // completes, and any fallout (shell contexts) is absorbed by
            // *its* caller via the requires-continuation classification.
            if s.kind == CallKind::Forward {
                return false;
            }
            let callee = program.method(s.callee);
            s.hint == LocalityHint::Unknown
                || program.class(callee.class).locked
                || may_block[s.callee.idx()]
                || requires_cont[s.callee.idx()]
        })
    }

    /// Convenience accessor.
    pub fn blocks(&self, m: MethodId) -> bool {
        self.may_block[m.idx()]
    }

    /// Convenience accessor.
    pub fn needs_cont(&self, m: MethodId) -> bool {
        self.requires_cont[m.idx()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hem_ir::{LocalityHint, ProgramBuilder};

    fn facts(p: &Program) -> FlowFacts {
        FlowFacts::compute(p, &CallGraph::build(p))
    }

    #[test]
    fn leaf_is_nonblocking() {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("C", false);
        let leaf = pb.method(c, "leaf", 0, |mb| mb.reply(1i64));
        let p = pb.finish();
        let f = facts(&p);
        assert!(!f.blocks(leaf));
        assert!(!f.needs_cont(leaf));
    }

    #[test]
    fn unknown_locality_blocks() {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("C", false);
        let leaf = pb.method(c, "leaf", 0, |mb| mb.reply(1i64));
        let m = pb.method(c, "m", 1, |mb| {
            let s = mb.invoke_into(mb.arg(0), leaf, &[]);
            let v = mb.touch_get(s);
            mb.reply(v);
        });
        let p = pb.finish();
        let f = facts(&p);
        assert!(!f.blocks(leaf));
        assert!(
            f.blocks(m),
            "invoke on unknown-location object may be remote"
        );
    }

    #[test]
    fn locked_class_blocks_even_locally() {
        let mut pb = ProgramBuilder::new();
        let locked = pb.class("L", true);
        let unlocked = pb.class("U", false);
        let leaf = pb.method(locked, "leaf", 0, |mb| mb.reply(1i64));
        let m = pb.method(unlocked, "m", 1, |mb| {
            let s = mb.invoke_local(mb.arg(0), leaf, &[]);
            let v = mb.touch_get(s);
            mb.reply(v);
        });
        let p = pb.finish();
        let f = facts(&p);
        assert!(f.blocks(m), "target lock may be held");
        assert!(!f.blocks(leaf));
    }

    #[test]
    fn may_block_is_transitive() {
        // a -> b -> c where only c has a remote invoke.
        let mut pb = ProgramBuilder::new();
        let cls = pb.class("C", false);
        let leaf = pb.method(cls, "leaf", 0, |mb| mb.reply(1i64));
        let c = pb.method(cls, "c", 1, |mb| {
            let s = mb.invoke_into(mb.arg(0), leaf, &[]); // Unknown hint
            let v = mb.touch_get(s);
            mb.reply(v);
        });
        let b = pb.method(cls, "b", 1, |mb| {
            let me = mb.self_ref();
            let s = mb.invoke_local(me, c, &[mb.arg(0).into()]);
            let v = mb.touch_get(s);
            mb.reply(v);
        });
        let a = pb.method(cls, "a", 1, |mb| {
            let me = mb.self_ref();
            let s = mb.invoke_local(me, b, &[mb.arg(0).into()]);
            let v = mb.touch_get(s);
            mb.reply(v);
        });
        let p = pb.finish();
        let f = facts(&p);
        assert!(f.blocks(c));
        assert!(f.blocks(b));
        assert!(f.blocks(a));
        assert!(!f.blocks(leaf));
    }

    #[test]
    fn recursion_terminates_and_stays_nonblocking() {
        let mut pb = ProgramBuilder::new();
        let cls = pb.class("C", false);
        let f_id = pb.declare(cls, "f", 1);
        pb.define(f_id, |mb| {
            let me = mb.self_ref();
            let s = mb.invoke_local(me, f_id, &[mb.arg(0).into()]);
            let v = mb.touch_get(s);
            mb.reply(v);
        });
        let p = pb.finish();
        let f = facts(&p);
        assert!(
            !f.blocks(f_id),
            "self-recursion on local unlocked object is stack-safe"
        );
    }

    #[test]
    fn forward_marks_cp_but_not_blocking() {
        let mut pb = ProgramBuilder::new();
        let cls = pb.class("C", false);
        let leaf = pb.method(cls, "leaf", 0, |mb| mb.reply(1i64));
        let fwd = pb.method(cls, "fwd", 0, |mb| {
            let me = mb.self_ref();
            mb.forward(me, leaf, &[], LocalityHint::AlwaysLocal);
        });
        let p = pb.finish();
        let f = facts(&p);
        assert!(f.needs_cont(fwd));
        assert!(!f.blocks(fwd), "forwarding completes the forwarder");
    }

    #[test]
    fn calling_cp_callee_blocks_caller() {
        let mut pb = ProgramBuilder::new();
        let cls = pb.class("C", false);
        let leaf = pb.method(cls, "leaf", 0, |mb| mb.reply(1i64));
        let fwd = pb.method(cls, "fwd", 0, |mb| {
            let me = mb.self_ref();
            mb.forward(me, leaf, &[], LocalityHint::AlwaysLocal);
        });
        let caller = pb.method(cls, "caller", 0, |mb| {
            let me = mb.self_ref();
            let s = mb.invoke_local(me, fwd, &[]);
            let v = mb.touch_get(s);
            mb.reply(v);
        });
        let p = pb.finish();
        let f = facts(&p);
        assert!(
            !f.needs_cont(caller),
            "callers of CP methods are not CP themselves"
        );
        assert!(f.blocks(caller), "a CP callee may consume its continuation");
    }

    #[test]
    fn store_cont_marks_cp() {
        let mut pb = ProgramBuilder::new();
        let cls = pb.class("B", false);
        let fld = pb.field(cls, "waiter");
        let arrive = pb.method(cls, "arrive", 0, |mb| {
            mb.store_cont(fld);
            mb.halt();
        });
        let p = pb.finish();
        let f = facts(&p);
        assert!(f.needs_cont(arrive));
    }
}
