//! Automatic speculative-inlining candidate selection.
//!
//! Concert's compiler chose inlining candidates itself; the kernels in
//! `hem-apps` mark accessors by hand, but a frontend lowering to the IR
//! wants this decided automatically. The policy mirrors §4.2: a method is
//! a candidate iff its sequential version is **provably non-blocking**
//! (the guard only has to re-check locality and lock state, never absorb
//! a fallback), it is small, and it performs no further invocations
//! (a leaf — inlining call-containing bodies would require the guard
//! machinery at every transitive site).

use crate::{Analysis, Schema};
use hem_ir::{Instr, Program};

/// Inlining policy knobs.
#[derive(Debug, Clone, Copy)]
pub struct InlinePolicy {
    /// Maximum body length (instructions) of a candidate.
    pub max_body: usize,
}

impl Default for InlinePolicy {
    fn default() -> Self {
        InlinePolicy { max_body: 8 }
    }
}

/// Mark every method that satisfies `policy` as inlinable. Returns how
/// many methods were (newly) marked. Never *unmarks* hand-chosen
/// candidates.
pub fn mark_inlinable(program: &mut Program, policy: InlinePolicy) -> usize {
    let analysis = Analysis::analyze(program);
    let schemas = analysis.schemas(crate::InterfaceSet::Full);
    let mut marked = 0;
    for (i, m) in program.methods.iter_mut().enumerate() {
        if m.inlinable {
            continue;
        }
        let leaf = !m.body.iter().any(|ins| {
            matches!(
                ins,
                Instr::Invoke { .. }
                    | Instr::Forward { .. }
                    | Instr::StoreCont { .. }
                    | Instr::Multicast { .. }
                    | Instr::Reduce { .. }
                    | Instr::Barrier { .. }
            )
        });
        if leaf
            && m.body.len() <= policy.max_body
            && schemas.of(hem_ir::MethodId(i as u32)) == Schema::NonBlocking
        {
            m.inlinable = true;
            marked += 1;
        }
    }
    marked
}

#[cfg(test)]
mod tests {
    use super::*;
    use hem_ir::{BinOp, ProgramBuilder};

    #[test]
    fn marks_leaves_only() {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("C", false);
        let f = pb.field(c, "x");
        let leaf = pb.method(c, "get", 0, |mb| {
            let v = mb.get_field(f);
            mb.reply(v);
        });
        let caller = pb.method(c, "go", 0, |mb| {
            let me = mb.self_ref();
            let s = mb.invoke_local(me, leaf, &[]);
            let v = mb.touch_get(s);
            mb.reply(v);
        });
        let mut p = pb.finish();
        let n = mark_inlinable(&mut p, InlinePolicy::default());
        assert_eq!(n, 1);
        assert!(p.method(leaf).inlinable);
        assert!(
            !p.method(caller).inlinable,
            "call-containing bodies stay out"
        );
    }

    #[test]
    fn respects_size_cap_and_blocking() {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("C", false);
        let big = pb.method(c, "big", 1, |mb| {
            let mut acc = mb.arg(0);
            for _ in 0..20 {
                acc = mb.binl(BinOp::Add, acc, 1);
            }
            mb.reply(acc);
        });
        let locked = pb.class("L", true);
        let on_locked = pb.method(locked, "tiny", 0, |mb| mb.reply(1i64));
        let mut p = pb.finish();
        mark_inlinable(&mut p, InlinePolicy { max_body: 8 });
        assert!(!p.method(big).inlinable, "too big");
        // A tiny method on a locked class is still NB itself (the lock
        // check happens at the call site), so it is a candidate.
        assert!(p.method(on_locked).inlinable);
    }

    #[test]
    fn idempotent_and_preserves_manual_marks() {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("C", false);
        pb.method(c, "hand", 0, |mb| {
            mb.inlinable();
            mb.reply(1i64);
        });
        let mut p = pb.finish();
        assert_eq!(mark_inlinable(&mut p, InlinePolicy::default()), 0);
        assert!(p.methods[0].inlinable);
    }

    #[test]
    fn auto_marked_program_still_correct() {
        // fib with auto-inlining enabled must compute the same value and
        // validate (end-to-end through the runtime is covered by the
        // hem-core tests; here: the pass keeps the program well-formed).
        let mut pb = ProgramBuilder::new();
        let c = pb.class("Math", false);
        let fib = pb.declare(c, "fib", 1);
        pb.define(fib, |mb| {
            let n = mb.arg(0);
            let small = mb.binl(BinOp::Lt, n, 2);
            mb.if_else(
                small,
                |mb| mb.reply(n),
                |mb| {
                    let me = mb.self_ref();
                    let a = mb.binl(BinOp::Sub, n, 1);
                    let s = mb.invoke_local(me, fib, &[a.into()]);
                    let v = mb.touch_get(s);
                    mb.reply(v);
                },
            );
        });
        let mut p = pb.finish();
        mark_inlinable(&mut p, InlinePolicy::default());
        assert!(p.validate().is_ok());
        assert!(!p.method(fib).inlinable, "recursive caller is not a leaf");
    }
}
