//! Invocation schema selection (paper Table 1).
//!
//! Each method gets exactly one *sequential* interface; the heap-based
//! parallel version always exists alongside it. [`InterfaceSet`] models
//! Table 3's restricted configurations: with `CpOnly` every method is
//! invoked through the most general (and most expensive) interface; `MbCp`
//! adds the may-block fast path; `Full` enables all three.

use crate::flow::FlowFacts;
use hem_ir::MethodId;

/// The sequential invocation schema of a method (paper §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Schema {
    /// Straight C call; provably cannot block.
    NonBlocking,
    /// Optimistic stack execution with lazy context allocation.
    MayBlock,
    /// Lazy context *and* continuation creation; supports forwarding.
    ContPassing,
}

impl std::fmt::Display for Schema {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Schema::NonBlocking => "NB",
            Schema::MayBlock => "MB",
            Schema::ContPassing => "CP",
        };
        write!(f, "{s}")
    }
}

/// Which sequential interfaces the generated code may use (Table 3's
/// "1 interface" / "2 interfaces" / "3 interfaces").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InterfaceSet {
    /// Only the continuation-passing interface (most general, 1 interface).
    CpOnly,
    /// May-block + continuation-passing (2 interfaces).
    MbCp,
    /// All three (3 interfaces).
    Full,
}

impl InterfaceSet {
    /// Clamp an analyzed schema to this interface set: a method classified
    /// below the available set is invoked through the next more general
    /// interface (always sound, just slower).
    pub fn clamp(self, s: Schema) -> Schema {
        match (self, s) {
            (InterfaceSet::CpOnly, _) => Schema::ContPassing,
            (InterfaceSet::MbCp, Schema::NonBlocking) => Schema::MayBlock,
            (_, s) => s,
        }
    }
}

/// Per-method selected sequential schemas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaMap {
    /// Schema per method, indexed by `MethodId`.
    pub seq: Vec<Schema>,
    /// The interface set used for selection.
    pub interfaces: InterfaceSet,
}

impl SchemaMap {
    /// Fold flow facts into schemas under an interface restriction.
    pub fn select(facts: &FlowFacts, interfaces: InterfaceSet) -> Self {
        let seq = facts
            .may_block
            .iter()
            .zip(&facts.requires_cont)
            .map(|(&blocks, &cp)| {
                let s = if cp {
                    Schema::ContPassing
                } else if blocks {
                    Schema::MayBlock
                } else {
                    Schema::NonBlocking
                };
                interfaces.clamp(s)
            })
            .collect();
        SchemaMap { seq, interfaces }
    }

    /// Schema of a method.
    #[inline]
    pub fn of(&self, m: MethodId) -> Schema {
        self.seq[m.idx()]
    }

    /// Count of methods per schema `(nb, mb, cp)`.
    pub fn histogram(&self) -> (usize, usize, usize) {
        let mut h = (0, 0, 0);
        for s in &self.seq {
            match s {
                Schema::NonBlocking => h.0 += 1,
                Schema::MayBlock => h.1 += 1,
                Schema::ContPassing => h.2 += 1,
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn facts(may_block: Vec<bool>, requires_cont: Vec<bool>) -> FlowFacts {
        FlowFacts {
            may_block,
            requires_cont,
        }
    }

    #[test]
    fn selection_order() {
        // (blocks, cp) -> schema
        let f = facts(
            vec![false, true, false, true],
            vec![false, false, true, true],
        );
        let m = SchemaMap::select(&f, InterfaceSet::Full);
        assert_eq!(m.of(MethodId(0)), Schema::NonBlocking);
        assert_eq!(m.of(MethodId(1)), Schema::MayBlock);
        assert_eq!(m.of(MethodId(2)), Schema::ContPassing);
        assert_eq!(m.of(MethodId(3)), Schema::ContPassing);
        assert_eq!(m.histogram(), (1, 1, 2));
    }

    #[test]
    fn cp_only_clamps_everything() {
        let f = facts(vec![false, true], vec![false, false]);
        let m = SchemaMap::select(&f, InterfaceSet::CpOnly);
        assert!(m.seq.iter().all(|s| *s == Schema::ContPassing));
    }

    #[test]
    fn mbcp_clamps_only_nonblocking() {
        let f = facts(vec![false, true, false], vec![false, false, true]);
        let m = SchemaMap::select(&f, InterfaceSet::MbCp);
        assert_eq!(m.of(MethodId(0)), Schema::MayBlock);
        assert_eq!(m.of(MethodId(1)), Schema::MayBlock);
        assert_eq!(m.of(MethodId(2)), Schema::ContPassing);
    }

    #[test]
    fn schema_ordering_reflects_generality() {
        assert!(Schema::NonBlocking < Schema::MayBlock);
        assert!(Schema::MayBlock < Schema::ContPassing);
    }

    #[test]
    fn display_names() {
        assert_eq!(Schema::NonBlocking.to_string(), "NB");
        assert_eq!(Schema::MayBlock.to_string(), "MB");
        assert_eq!(Schema::ContPassing.to_string(), "CP");
    }

    const ALL_SCHEMAS: [Schema; 3] = [Schema::NonBlocking, Schema::MayBlock, Schema::ContPassing];
    const ALL_SETS: [InterfaceSet; 3] =
        [InterfaceSet::Full, InterfaceSet::MbCp, InterfaceSet::CpOnly];

    #[test]
    fn clamp_never_loses_generality_and_is_idempotent() {
        for set in ALL_SETS {
            for s in ALL_SCHEMAS {
                let c = set.clamp(s);
                assert!(c >= s, "{set:?}.clamp({s:?}) = {c:?} lost generality");
                assert_eq!(set.clamp(c), c, "{set:?} clamp not idempotent at {s:?}");
            }
        }
    }

    #[test]
    fn clamp_is_monotone_in_both_arguments() {
        // Monotone in the schema argument (per set)...
        for set in ALL_SETS {
            for w in ALL_SCHEMAS.windows(2) {
                assert!(set.clamp(w[0]) <= set.clamp(w[1]));
            }
        }
        // ...and in the set argument (tighter sets clamp at least as high).
        for s in ALL_SCHEMAS {
            assert!(InterfaceSet::Full.clamp(s) <= InterfaceSet::MbCp.clamp(s));
            assert!(InterfaceSet::MbCp.clamp(s) <= InterfaceSet::CpOnly.clamp(s));
        }
    }

    #[test]
    fn full_set_clamp_is_identity() {
        for s in ALL_SCHEMAS {
            assert_eq!(InterfaceSet::Full.clamp(s), s);
        }
    }

    #[test]
    fn histogram_always_sums_to_method_count() {
        // Exhaustive over all 2-bit fact combinations for a few sizes.
        for n in [0usize, 1, 4, 9] {
            let f = facts(
                (0..n).map(|i| i % 2 == 0).collect(),
                (0..n).map(|i| i % 3 == 0).collect(),
            );
            for set in ALL_SETS {
                let m = SchemaMap::select(&f, set);
                let (nb, mb, cp) = m.histogram();
                assert_eq!(nb + mb + cp, n, "{set:?} histogram must cover {n} methods");
            }
        }
    }
}
