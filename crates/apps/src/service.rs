//! Open-system service mix: a front-end/back-end request-serving world
//! driven by a seeded arrival process instead of a closed harness loop.
//!
//! One `Frontend` per node fields three request kinds — a remote `lookup`
//! (RPC to one backend), a `fanout` (join over every backend), and a
//! local `compute` loop — against a population of locked `Backend`
//! objects. [`run_service`] plays a [`hem_machine::arrival`] stream
//! against the machine with [`hem_core::Runtime::run_until`], applying
//! driver-side admission control (queue-depth cap, deadline-infeasibility
//! shedding), and returns the raw per-request dispositions. Everything —
//! target choice, request kind, admission — is a pure function of
//! `(seed, client, k)` and the machine's deterministic state, so the same
//! parameters reproduce the same trace on every executor.

use hem_core::{Runtime, Trap};
use hem_ir::{BinOp, FieldId, MethodId, ObjRef, Program, ProgramBuilder, Value};
use hem_machine::arrival::{ArrivalDist, OpenLoop};
use hem_machine::{Cycles, NodeId};

/// Program + handles for the service mix.
#[derive(Debug, Clone)]
pub struct ServiceProgram {
    /// The program.
    pub program: Program,
    /// `Frontend.lookup(i)`: RPC `get` to backend `i mod len`.
    pub lookup: MethodId,
    /// `Frontend.fanout()`: acked multicast of `bump(1)` to every backend.
    pub fanout: MethodId,
    /// `Frontend.compute(n)`: `n` iterations of local field arithmetic.
    pub compute: MethodId,
    /// `Backend.get`.
    pub get: MethodId,
    /// `Backend.bump`.
    pub bump: MethodId,
    /// `Backend.total` field.
    pub total: FieldId,
    /// `Frontend.backends` array field.
    pub backends: FieldId,
    /// `Frontend.scratch` field.
    pub scratch: FieldId,
}

/// Build the program.
pub fn build() -> ServiceProgram {
    let mut pb = ProgramBuilder::new();

    // Backends are locked: concurrent bumps from fanouts serialize, so
    // an overloaded backend shows up as lock deferrals + queueing delay.
    let backend = pb.class("Backend", true);
    let total = pb.field(backend, "total");
    let get = pb.method(backend, "get", 0, |mb| {
        mb.inlinable();
        let v = mb.get_field(total);
        mb.reply(v);
    });
    let bump = pb.method(backend, "bump", 1, |mb| {
        let v = mb.get_field(total);
        let nv = mb.binl(BinOp::Add, v, mb.arg(0));
        mb.set_field(total, nv);
        mb.reply(nv);
    });

    let frontend = pb.class("Frontend", false);
    let backends = pb.array_field(frontend, "backends");
    let scratch = pb.field(frontend, "scratch");

    // RPC kind: one remote read, blocking on the reply.
    let lookup = pb.method(frontend, "lookup", 1, |mb| {
        let n = mb.arr_len(backends);
        let i = mb.binl(BinOp::Rem, mb.arg(0), n);
        let b = mb.get_elem(backends, i);
        let s = mb.invoke_into(b, get, &[]);
        let v = mb.touch_get(s);
        mb.reply(v);
    });

    // Data-parallel kind: bump every backend with one acked multicast.
    let fanout = pb.method(frontend, "fanout", 0, |mb| {
        let s = mb.multicast_into(backends, bump, &[1i64.into()]);
        mb.touch(&[s]);
        mb.reply_nil();
    });

    // Local kind: pure on-node work, no messaging.
    let compute = pb.method(frontend, "compute", 1, |mb| {
        mb.for_range(0i64, mb.arg(0), |mb, _| {
            let v = mb.get_field(scratch);
            let nv = mb.binl(BinOp::Add, v, 1);
            mb.set_field(scratch, nv);
        });
        let v = mb.get_field(scratch);
        mb.reply(v);
    });

    ServiceProgram {
        program: pb.finish(),
        lookup,
        fanout,
        compute,
        get,
        bump,
        total,
        backends,
        scratch,
    }
}

/// A placed service world: one frontend per node, backends round-robin.
pub struct ServiceInstance {
    /// Program handles.
    pub ids: ServiceProgram,
    /// Per-node frontends.
    pub frontends: Vec<ObjRef>,
    /// All backends.
    pub backend_refs: Vec<ObjRef>,
}

/// Place `n_backends` backends round-robin over all nodes plus one
/// frontend per node holding the full backend array.
pub fn setup(rt: &mut Runtime, ids: &ServiceProgram, n_backends: u32) -> ServiceInstance {
    let nodes = rt.n_nodes() as u32;
    let backend_refs: Vec<ObjRef> = (0..n_backends)
        .map(|i| {
            let r = rt.alloc_object_by_name("Backend", NodeId(i % nodes));
            rt.set_field(r, ids.total, Value::Int(0));
            r
        })
        .collect();
    let frontends: Vec<ObjRef> = (0..nodes)
        .map(|n| {
            let f = rt.alloc_object_by_name("Frontend", NodeId(n));
            rt.set_array(
                f,
                ids.backends,
                backend_refs.iter().map(|b| Value::Obj(*b)).collect(),
            );
            rt.set_field(f, ids.scratch, Value::Int(0));
            f
        })
        .collect();
    ServiceInstance {
        ids: ids.clone(),
        frontends,
        backend_refs,
    }
}

/// Open-loop driver parameters.
#[derive(Debug, Clone, Copy)]
pub struct ServeParams {
    /// Run until this virtual time (exclusive).
    pub horizon: Cycles,
    /// Arrival process.
    pub dist: ArrivalDist,
    /// Independent arrival streams.
    pub clients: u32,
    /// Arrival-process seed.
    pub seed: u64,
    /// Shed a request whose target's clock already trails its arrival by
    /// more than this (0 = no deadline).
    pub deadline: Cycles,
    /// Shed a request whose target node holds at least this much queued
    /// work (0 = unbounded queue).
    pub max_queue: usize,
}

/// What became of one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Reply delivered at this virtual time.
    Completed(Cycles),
    /// Still in flight when the horizon hit.
    Pending,
    /// Refused: target queue over `max_queue`.
    ShedQueue,
    /// Refused: target clock made the deadline infeasible at arrival.
    ShedDeadline,
}

/// One request's record: identity, arrival, target, kind, outcome.
#[derive(Debug, Clone, Copy)]
pub struct ReqRecord {
    /// Request id (dense, arrival-ordered).
    pub req: u64,
    /// Arrival time.
    pub arrived: Cycles,
    /// Target node.
    pub node: NodeId,
    /// Request kind: 0 = lookup, 1 = compute, 2 = fanout.
    pub kind: u8,
    /// Outcome.
    pub disposition: Disposition,
}

/// The driver's raw result. Aggregation (histograms, quantiles, warm-up
/// trimming) belongs to the observability layer; this crate only reports
/// what happened.
#[derive(Debug, Clone, Default)]
pub struct ServeOutcome {
    /// One record per offered request, in arrival order.
    pub records: Vec<ReqRecord>,
}

impl ServeOutcome {
    /// Count of records matching a predicate.
    pub fn count(&self, f: impl Fn(&ReqRecord) -> bool) -> u64 {
        self.records.iter().filter(|r| f(r)).count() as u64
    }

    /// Sojourn times (arrival → reply) of completed requests, in arrival
    /// order.
    pub fn latencies(&self) -> Vec<(Cycles, Cycles)> {
        self.records
            .iter()
            .filter_map(|r| match r.disposition {
                Disposition::Completed(done) => Some((r.arrived, done.saturating_sub(r.arrived))),
                _ => None,
            })
            .collect()
    }
}

/// Play a seeded arrival stream against the machine up to
/// `params.horizon`, applying admission control at each arrival.
///
/// The request mix is keyed off each arrival's decision key: 60%
/// `lookup`, 30% `compute`, 10% `fanout`, targeting the frontend
/// `key mod nodes`. Shedding happens *before* injection and is itself
/// deterministic: both tests (queue depth, deadline feasibility) read
/// machine state that is bit-identical across executors at the arrival's
/// `run_until` boundary.
pub fn run_service(
    rt: &mut Runtime,
    inst: &ServiceInstance,
    params: &ServeParams,
) -> Result<ServeOutcome, Trap> {
    let mut out = ServeOutcome::default();
    for a in OpenLoop::new(params.dist, params.clients, params.seed) {
        if a.at >= params.horizon {
            break;
        }
        rt.run_until(a.at)?;
        let fe = inst.frontends[(a.key % inst.frontends.len() as u64) as usize];
        let pick = (a.key >> 32) % 100;
        let (kind, method, args): (u8, MethodId, Vec<Value>) = if pick < 60 {
            let i = (a.key >> 16) as i64 & 0xFFFF;
            (0, inst.ids.lookup, vec![Value::Int(i)])
        } else if pick < 90 {
            let n = 4 + ((a.key >> 24) as i64 & 0x7);
            (1, inst.ids.compute, vec![Value::Int(n)])
        } else {
            (2, inst.ids.fanout, vec![])
        };
        let req = out.records.len() as u64;
        let mut rec = ReqRecord {
            req,
            arrived: a.at,
            node: fe.node,
            kind,
            disposition: Disposition::Pending,
        };
        if params.max_queue > 0 && rt.queue_depth(fe.node) >= params.max_queue {
            rec.disposition = Disposition::ShedQueue;
            rt.note_request_shed(a.at, fe.node, req);
        } else if params.deadline > 0 && rt.node_time(fe.node) > a.at + params.deadline {
            rec.disposition = Disposition::ShedDeadline;
            rt.note_request_shed(a.at, fe.node, req);
        } else {
            rt.inject_request(a.at, req, fe, method, &args);
        }
        out.records.push(rec);
    }
    rt.run_until(params.horizon)?;
    for (req, done) in rt.take_completed_requests() {
        out.records[req as usize].disposition = Disposition::Completed(done);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hem_analysis::InterfaceSet;
    use hem_core::ExecMode;
    use hem_machine::cost::CostModel;

    fn world(nodes: u32) -> (Runtime, ServiceInstance) {
        let ids = build();
        let mut rt = crate::make_runtime(
            ids.program.clone(),
            nodes,
            CostModel::cm5(),
            ExecMode::Hybrid,
            InterfaceSet::Full,
        );
        let inst = setup(&mut rt, &ids, 8);
        (rt, inst)
    }

    fn params(horizon: Cycles) -> ServeParams {
        ServeParams {
            horizon,
            dist: ArrivalDist::Poisson { mean_gap: 400.0 },
            clients: 3,
            seed: 42,
            deadline: 0,
            max_queue: 0,
        }
    }

    #[test]
    fn requests_complete_and_latencies_are_positive() {
        let (mut rt, inst) = world(4);
        let out = run_service(&mut rt, &inst, &params(60_000)).unwrap();
        assert!(out.records.len() > 50, "offered {}", out.records.len());
        let completed = out.count(|r| matches!(r.disposition, Disposition::Completed(_)));
        assert!(completed > 0, "some requests complete");
        for (arrived, lat) in out.latencies() {
            assert!(arrived < 60_000);
            assert!(lat > 0, "reply strictly after arrival");
        }
        // All three kinds appear in a decent-sized sample.
        for kind in 0..3u8 {
            assert!(out.count(|r| r.kind == kind) > 0, "kind {kind} offered");
        }
    }

    #[test]
    fn driver_is_deterministic() {
        let run = || {
            let (mut rt, inst) = world(4);
            let out = run_service(&mut rt, &inst, &params(40_000)).unwrap();
            (
                out.records
                    .iter()
                    .map(|r| (r.req, r.arrived, r.node.0, r.kind))
                    .collect::<Vec<_>>(),
                out.latencies(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn queue_cap_sheds_under_overload() {
        let (mut rt, inst) = world(2);
        let p = ServeParams {
            horizon: 40_000,
            dist: ArrivalDist::Poisson { mean_gap: 30.0 },
            clients: 4,
            seed: 7,
            deadline: 0,
            max_queue: 2,
        };
        let out = run_service(&mut rt, &inst, &p).unwrap();
        assert!(
            out.count(|r| r.disposition == Disposition::ShedQueue) > 0,
            "overload with a tiny queue cap must shed"
        );
    }

    #[test]
    fn deadline_sheds_when_the_target_lags() {
        let (mut rt, inst) = world(2);
        let p = ServeParams {
            horizon: 40_000,
            dist: ArrivalDist::Poisson { mean_gap: 30.0 },
            clients: 4,
            seed: 7,
            deadline: 50,
            max_queue: 0,
        };
        let out = run_service(&mut rt, &inst, &p).unwrap();
        assert!(
            out.count(|r| r.disposition == Disposition::ShedDeadline) > 0,
            "an overloaded node's clock outruns tight deadlines"
        );
    }
}
