//! The synchronization and communication structures of Fig. 3.
//!
//! The paper's programming model supports RPC-style synchronous calls,
//! data (object) parallelism, reactive (no-reply) computation, and custom
//! user-built synchronization structures (its example: continuations
//! stored in a barrier). This module builds one small program exercising
//! all four against a shared `Cell` population — used by the
//! `sync_structures` example and the schema tests: each structure ends up
//! in a different invocation schema, demonstrating the interface
//! hierarchy.

use hem_core::{Runtime, Trap};
use hem_ir::{BinOp, FieldId, MethodId, ObjRef, Program, ProgramBuilder, UnOp, Value};
use hem_machine::NodeId;

/// Program + handles for the four structures.
#[derive(Debug, Clone)]
pub struct SyncProgram {
    /// The program.
    pub program: Program,
    /// RPC: `Driver.rpc(cell)` → synchronous round trip.
    pub rpc: MethodId,
    /// Data-parallel: `Driver.fan()` → join over all cells.
    pub fan: MethodId,
    /// Reactive: `Driver.scatter()` → fire-and-forget bumps, no replies.
    pub scatter: MethodId,
    /// Custom: `Driver.rendezvous()` → all drivers meet at a barrier.
    pub rendezvous: MethodId,
    /// Modeled reduction: `Driver.sum_all()` → fold `read` over cells.
    pub sum_all: MethodId,
    /// Modeled barrier: `Driver.quiesce()` → barrier over the cells'
    /// hosting nodes.
    pub quiesce: MethodId,
    /// `Cell.read`.
    pub read: MethodId,
    /// `Cell.bump`.
    pub bump: MethodId,
    /// `Cell.value` field.
    pub value: FieldId,
    /// `Driver.cells` array field.
    pub cells: FieldId,
    /// `Driver.bar` field.
    pub bar: FieldId,
    /// `Barrier.count`.
    pub bar_count: FieldId,
    /// `Barrier.waiters`.
    pub bar_waiters: FieldId,
    /// `Barrier.arrive`.
    pub arrive: MethodId,
}

/// Build the program.
pub fn build() -> SyncProgram {
    let mut pb = ProgramBuilder::new();

    let cell = pb.class("Cell", false);
    let value = pb.field(cell, "value");
    let read = pb.method(cell, "read", 0, |mb| {
        mb.inlinable();
        let v = mb.get_field(value);
        mb.reply(v);
    });
    let bump = pb.method(cell, "bump", 1, |mb| {
        let v = mb.get_field(value);
        let nv = mb.binl(BinOp::Add, v, mb.arg(0));
        mb.set_field(value, nv);
        mb.reply(nv);
    });

    let barrier = pb.class("Barrier", true);
    let bar_count = pb.field(barrier, "count");
    let bar_waiters = pb.array_field(barrier, "waiters");
    let arrive = pb.method(barrier, "arrive", 0, |mb| {
        let c = mb.get_field(bar_count);
        let c1 = mb.binl(BinOp::Sub, c, 1);
        mb.set_field(bar_count, c1);
        let done = mb.binl(BinOp::Eq, c1, 0);
        mb.if_else(
            done,
            |mb| {
                let n = mb.arr_len(bar_waiters);
                mb.for_range(0i64, n, |mb, i| {
                    let w = mb.get_elem(bar_waiters, i);
                    let nilp = mb.unl(UnOp::IsNil, w);
                    let present = mb.binl(BinOp::Eq, nilp, false);
                    mb.if_(present, |mb| {
                        mb.send_to_cont(w, 1i64);
                        mb.set_elem(bar_waiters, i, Value::Nil);
                    });
                });
                mb.reply(1i64);
            },
            |mb| {
                mb.store_cont_at(bar_waiters, c1);
                mb.halt();
            },
        );
    });

    let driver = pb.class("Driver", false);
    let cells = pb.array_field(driver, "cells");
    let bar = pb.field(driver, "bar");

    // RPC (synchronous request/response on one remote cell).
    let rpc = pb.method(driver, "rpc", 1, |mb| {
        let s = mb.invoke_into(mb.arg(0), read, &[]);
        let v = mb.touch_get(s);
        mb.reply(v);
    });

    // Data-parallel: bump every cell with one acked multicast.
    let fan = pb.method(driver, "fan", 0, |mb| {
        let s = mb.multicast_into(cells, bump, &[1i64.into()]);
        mb.touch(&[s]);
        mb.reply_nil();
    });

    // Reactive: a fire-and-forget multicast — no futures, no replies;
    // effects become visible at quiescence.
    let scatter = pb.method(driver, "scatter", 0, |mb| {
        mb.multicast(None, cells, bump, &[10i64.into()]);
        mb.reply_nil();
    });

    // Custom: rendezvous at the shared barrier.
    let rendezvous = pb.method(driver, "rendezvous", 0, |mb| {
        let b = mb.get_field(bar);
        let s = mb.invoke_into(b, arrive, &[]);
        let v = mb.touch_get(s);
        mb.reply(v);
    });

    // Modeled reduction: fold every cell's value up the fan-in tree.
    let sum_all = pb.method(driver, "sum_all", 0, |mb| {
        let s = mb.reduce(cells, read, &[], BinOp::Add);
        let v = mb.touch_get(s);
        mb.reply(v);
    });

    // Modeled barrier: resolve once every cell-hosting node has arrived.
    let quiesce = pb.method(driver, "quiesce", 0, |mb| {
        let s = mb.barrier(cells);
        mb.touch(&[s]);
        mb.reply_nil();
    });

    SyncProgram {
        program: pb.finish(),
        rpc,
        fan,
        scatter,
        rendezvous,
        sum_all,
        quiesce,
        read,
        bump,
        value,
        cells,
        bar,
        bar_count,
        bar_waiters,
        arrive,
    }
}

/// A placed demo world: one driver per node, cells scattered round-robin,
/// one barrier expecting all drivers.
pub struct SyncInstance {
    /// Program handles.
    pub ids: SyncProgram,
    /// Per-node drivers.
    pub drivers: Vec<ObjRef>,
    /// All cells.
    pub cell_refs: Vec<ObjRef>,
    /// The shared barrier.
    pub barrier: ObjRef,
}

/// Place `n_cells` cells round-robin over all nodes plus one driver per
/// node and a barrier sized to the driver count.
pub fn setup(rt: &mut Runtime, ids: &SyncProgram, n_cells: u32) -> SyncInstance {
    let nodes = rt.n_nodes() as u32;
    let cell_refs: Vec<ObjRef> = (0..n_cells)
        .map(|i| {
            let r = rt.alloc_object_by_name("Cell", NodeId(i % nodes));
            rt.set_field(r, ids.value, Value::Int(0));
            r
        })
        .collect();
    let barrier = rt.alloc_object_by_name("Barrier", NodeId(0));
    rt.set_field(barrier, ids.bar_count, Value::Int(nodes as i64));
    rt.set_array(barrier, ids.bar_waiters, vec![Value::Nil; nodes as usize]);
    let drivers: Vec<ObjRef> = (0..nodes)
        .map(|n| {
            let d = rt.alloc_object_by_name("Driver", NodeId(n));
            rt.set_array(
                d,
                ids.cells,
                cell_refs.iter().map(|c| Value::Obj(*c)).collect(),
            );
            rt.set_field(d, ids.bar, Value::Obj(barrier));
            d
        })
        .collect();
    SyncInstance {
        ids: ids.clone(),
        drivers,
        cell_refs,
        barrier,
    }
}

/// Run every driver through the barrier. Early arrivals park (their
/// `call` returns `None` and leaves a suspended context holding a stored
/// continuation); the final arrival releases everyone. Returns the last
/// arrival's reply.
pub fn run_rendezvous(rt: &mut Runtime, inst: &SyncInstance) -> Result<Option<Value>, Trap> {
    rt.set_field(
        inst.barrier,
        inst.ids.bar_count,
        Value::Int(inst.drivers.len() as i64),
    );
    rt.set_array(
        inst.barrier,
        inst.ids.bar_waiters,
        vec![Value::Nil; inst.drivers.len()],
    );
    let mut last = None;
    for d in &inst.drivers {
        last = rt.call(*d, inst.ids.rendezvous, &[])?;
    }
    Ok(last)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hem_analysis::{InterfaceSet, Schema};
    use hem_core::ExecMode;
    use hem_machine::cost::CostModel;

    fn world(nodes: u32) -> (Runtime, SyncInstance) {
        let ids = build();
        let mut rt = crate::make_runtime(
            ids.program.clone(),
            nodes,
            CostModel::cm5(),
            ExecMode::Hybrid,
            InterfaceSet::Full,
        );
        let inst = setup(&mut rt, &ids, 8);
        (rt, inst)
    }

    #[test]
    fn structures_get_distinct_schemas() {
        let (rt, inst) = world(2);
        let ids = &inst.ids;
        assert_eq!(rt.schemas().of(ids.read), Schema::NonBlocking);
        assert_eq!(rt.schemas().of(ids.bump), Schema::NonBlocking);
        assert_eq!(rt.schemas().of(ids.rpc), Schema::MayBlock);
        assert_eq!(rt.schemas().of(ids.fan), Schema::MayBlock);
        assert_eq!(rt.schemas().of(ids.arrive), Schema::ContPassing);
    }

    #[test]
    fn rpc_round_trip() {
        let (mut rt, inst) = world(2);
        let cell = inst.cell_refs[1]; // on node 1
        rt.set_field(cell, inst.ids.value, Value::Int(9));
        let r = rt
            .call(inst.drivers[0], inst.ids.rpc, &[Value::Obj(cell)])
            .unwrap();
        assert_eq!(r, Some(Value::Int(9)));
    }

    #[test]
    fn data_parallel_join_bumps_all() {
        let (mut rt, inst) = world(2);
        rt.call(inst.drivers[0], inst.ids.fan, &[]).unwrap();
        for c in &inst.cell_refs {
            assert_eq!(rt.get_field(*c, inst.ids.value), Value::Int(1));
        }
    }

    #[test]
    fn reactive_scatter_takes_effect_at_quiescence() {
        let (mut rt, inst) = world(2);
        rt.call(inst.drivers[0], inst.ids.scatter, &[]).unwrap();
        for c in &inst.cell_refs {
            assert_eq!(rt.get_field(*c, inst.ids.value), Value::Int(10));
        }
        assert_eq!(
            rt.stats().totals().replies_sent,
            0,
            "reactive: zero replies"
        );
    }

    #[test]
    fn reduce_sums_all_cells() {
        let (mut rt, inst) = world(2);
        for (k, c) in inst.cell_refs.iter().enumerate() {
            rt.set_field(*c, inst.ids.value, Value::Int(k as i64 + 1));
        }
        let r = rt.call(inst.drivers[0], inst.ids.sum_all, &[]).unwrap();
        let n = inst.cell_refs.len() as i64;
        assert_eq!(r, Some(Value::Int(n * (n + 1) / 2)));
        let t = rt.stats().totals();
        assert!(t.coll_contribs > 0, "reduction folded contributions");
    }

    #[test]
    fn modeled_barrier_resolves() {
        let (mut rt, inst) = world(3);
        let r = rt.call(inst.drivers[0], inst.ids.quiesce, &[]).unwrap();
        assert_eq!(r, Some(Value::Nil));
        let t = rt.stats().totals();
        assert_eq!(t.coll_initiated, 1);
        assert_eq!(t.replies_sent, 0, "barrier legs are not replies");
    }

    #[test]
    fn sequential_rendezvous_would_park() {
        // Driving arrivals one call at a time: the first arrival parks
        // (stores its continuation) and the call returns None; the final
        // arrival releases everyone.
        let (mut rt, inst) = world(3);
        let r1 = rt.call(inst.drivers[0], inst.ids.rendezvous, &[]).unwrap();
        assert_eq!(r1, None, "first arrival parks in the barrier");
        assert!(!rt.stuck_contexts().is_empty());
        let r2 = rt.call(inst.drivers[1], inst.ids.rendezvous, &[]).unwrap();
        assert_eq!(r2, None);
        let r3 = rt.call(inst.drivers[2], inst.ids.rendezvous, &[]).unwrap();
        assert_eq!(r3, Some(Value::Int(1)), "last arrival opens the barrier");
        assert!(rt.stuck_contexts().is_empty(), "parked drivers released");
    }
}
