//! MD-Force — the nonbonded force kernel of a molecular dynamics
//! simulation (Table 5).
//!
//! The computation iterates over atom pairs within a spatial cutoff,
//! updating the force fields of both atoms from their coordinates. The
//! paper's implementation (reproduced here) reduces communication by
//! **caching the coordinates of remote atoms** and by **combining force
//! increments** destined for the same remote atom into one message.
//!
//! Each pair is processed by a *method invocation* — the unit the hybrid
//! model optimizes — with the three dynamic cases of §4.3.2:
//!
//! * both atoms local → the computation is small and **speculatively
//!   inlined** (`do_pair_local`);
//! * partner remote but its coordinates already cached → larger, but
//!   completes **entirely on the stack** (`do_pair_cached`, cache hit);
//! * otherwise → **communication required**: the invocation blocks on the
//!   coordinate fetch and falls back to the parallel version (cache miss).
//!
//! The paper used a 10503-atom protein input from CEDAR; we substitute a
//! synthetic clustered particle set (Gaussian blobs in a box) whose cutoff
//! pair list has the same locality structure: under a **random** layout
//! almost every pair straddles nodes, while under an **orthogonal
//! recursive bisection** (spatial) layout most pairs are node-local.

use hem_core::{Runtime, Trap};
use hem_ir::{BinOp, FieldId, LocalityHint, MethodId, ObjRef, Program, ProgramBuilder, Value};
use hem_machine::topology::orb_partition;
use hem_machine::NodeId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// IR program + handles for MD-Force.
#[derive(Debug, Clone)]
pub struct MdProgram {
    /// The program.
    pub program: Program,
    /// `Atom.push_coords(worker, k)` — deliver coordinates into a cache.
    pub push_coords: MethodId,
    /// `Atom.add_force(dx, dy, dz)`.
    pub add_force: MethodId,
    /// `Atom.get_x` (inlinable; likewise y, z).
    pub get_x: MethodId,
    /// `Atom.get_y`.
    pub get_y: MethodId,
    /// `Atom.get_z`.
    pub get_z: MethodId,
    /// Atom position fields.
    pub f_x: FieldId,
    /// y.
    pub f_y: FieldId,
    /// z.
    pub f_z: FieldId,
    /// Atom force fields.
    pub f_fx: FieldId,
    /// fy.
    pub f_fy: FieldId,
    /// fz.
    pub f_fz: FieldId,
    /// `PairWorker.do_pair_local(a, b)` — both-local pair.
    pub do_pair_local: MethodId,
    /// `PairWorker.do_pair_cached(p)` — remote partner through the cache.
    pub do_pair_cached: MethodId,
    /// `PairWorker.store3(k, x, y, z)` — cache write-back target.
    pub w_store3: MethodId,
    /// `PairWorker.compute` — run all pairs.
    pub w_compute: MethodId,
    /// `PairWorker.flush` — send combined force increments.
    pub w_flush: MethodId,
    /// Worker fields (see `setup`).
    pub wf: WorkerFields,
    /// `Main.run_compute` fan-out.
    pub m_compute: MethodId,
    /// `Main.run_flush` fan-out.
    pub m_flush: MethodId,
    /// `Main.workers`.
    pub m_workers: FieldId,
}

/// The `PairWorker` field handles.
#[derive(Debug, Clone, Copy)]
pub struct WorkerFields {
    /// Refs of pair-first atoms (always local).
    pub pi: FieldId,
    /// Kind of the pair's second atom: 0 = local ref, 1 = cache index.
    pub pj_kind: FieldId,
    /// Second-atom local refs (Nil when cached).
    pub pj_ref: FieldId,
    /// Second-atom cache indices (0 when local).
    pub pj_cidx: FieldId,
    /// Remote atoms cached by this worker.
    pub cache_atoms: FieldId,
    /// Cache validity flags (0/1), reset each iteration.
    pub cvalid: FieldId,
    /// Cached coordinates.
    pub cx: FieldId,
    /// Cached y.
    pub cy: FieldId,
    /// Cached z.
    pub cz: FieldId,
    /// Combined force increments for cached atoms.
    pub cfx: FieldId,
    /// fy increments.
    pub cfy: FieldId,
    /// fz increments.
    pub cfz: FieldId,
}

/// Build the MD-Force program.
pub fn build() -> MdProgram {
    let mut pb = ProgramBuilder::new();

    // ---- Atom ----
    let atom = pb.class("Atom", false);
    let f_x = pb.field(atom, "x");
    let f_y = pb.field(atom, "y");
    let f_z = pb.field(atom, "z");
    let f_fx = pb.field(atom, "fx");
    let f_fy = pb.field(atom, "fy");
    let f_fz = pb.field(atom, "fz");

    let getter = |pb: &mut ProgramBuilder, name: &str, f: FieldId| {
        pb.method(atom, name, 0, |mb| {
            mb.inlinable();
            let v = mb.get_field(f);
            mb.reply(v);
        })
    };
    let get_x = getter(&mut pb, "get_x", f_x);
    let get_y = getter(&mut pb, "get_y", f_y);
    let get_z = getter(&mut pb, "get_z", f_z);

    let add_force = pb.method(atom, "add_force", 3, |mb| {
        mb.inlinable();
        let fx = mb.get_field(f_fx);
        let nfx = mb.binl(BinOp::Add, fx, mb.arg(0));
        mb.set_field(f_fx, nfx);
        let fy = mb.get_field(f_fy);
        let nfy = mb.binl(BinOp::Add, fy, mb.arg(1));
        mb.set_field(f_fy, nfy);
        let fz = mb.get_field(f_fz);
        let nfz = mb.binl(BinOp::Add, fz, mb.arg(2));
        mb.set_field(f_fz, nfz);
        mb.reply_nil();
    });

    // ---- PairWorker ----
    let worker = pb.class("PairWorker", false);
    let pi = pb.array_field(worker, "pi");
    let pj_kind = pb.array_field(worker, "pj_kind");
    let pj_ref = pb.array_field(worker, "pj_ref");
    let pj_cidx = pb.array_field(worker, "pj_cidx");
    let cache_atoms = pb.array_field(worker, "cache_atoms");
    let cvalid = pb.array_field(worker, "cvalid");
    let cx = pb.array_field(worker, "cx");
    let cy = pb.array_field(worker, "cy");
    let cz = pb.array_field(worker, "cz");
    let cfx = pb.array_field(worker, "cfx");
    let cfy = pb.array_field(worker, "cfy");
    let cfz = pb.array_field(worker, "cfz");

    let w_store3 = pb.method(worker, "store3", 4, |mb| {
        let k = mb.arg(0);
        mb.set_elem(cx, k, mb.arg(1));
        mb.set_elem(cy, k, mb.arg(2));
        mb.set_elem(cz, k, mb.arg(3));
        mb.reply_nil();
    });

    // Atom.push_coords(worker, k): send x,y,z to the worker's cache slot k
    // and complete when stored — one round trip fills the whole coordinate
    // triple (the paper's message-combining discipline).
    let push_coords = pb.method(atom, "push_coords", 2, |mb| {
        let (w, k) = (mb.arg(0), mb.arg(1));
        let x = mb.get_field(f_x);
        let y = mb.get_field(f_y);
        let z = mb.get_field(f_z);
        let s = mb.invoke_into(w, w_store3, &[k.into(), x.into(), y.into(), z.into()]);
        mb.touch(&[s]);
        mb.reply_nil();
    });

    // Emit the force arithmetic: given coordinate registers, apply +f to
    // atom `a` (local invoke) and return the (-fx,-fy,-fz) registers.
    struct Coords {
        xi: hem_ir::Local,
        yi: hem_ir::Local,
        zi: hem_ir::Local,
        xj: hem_ir::Local,
        yj: hem_ir::Local,
        zj: hem_ir::Local,
    }
    let force_body = |mb: &mut hem_ir::MethodBuilder,
                      a: hem_ir::Local,
                      c: Coords,
                      s: hem_ir::Slot|
     -> (hem_ir::Local, hem_ir::Local, hem_ir::Local) {
        // Pairwise repulsive force: f = 1/(r² + ε) along the separation
        // vector (no sqrt keeps the arithmetic exactly reproducible).
        let dx = mb.binl(BinOp::Sub, c.xi, c.xj);
        let dy = mb.binl(BinOp::Sub, c.yi, c.yj);
        let dz = mb.binl(BinOp::Sub, c.zi, c.zj);
        let dx2 = mb.binl(BinOp::Mul, dx, dx);
        let dy2 = mb.binl(BinOp::Mul, dy, dy);
        let dz2 = mb.binl(BinOp::Mul, dz, dz);
        let r2a = mb.binl(BinOp::Add, dx2, dy2);
        let r2 = mb.binl(BinOp::Add, r2a, dz2);
        let r2e = mb.binl(BinOp::Add, r2, 0.01f64);
        let f = mb.binl(BinOp::Div, 1.0f64, r2e);
        let fx = mb.binl(BinOp::Mul, f, dx);
        let fy = mb.binl(BinOp::Mul, f, dy);
        let fz = mb.binl(BinOp::Mul, f, dz);
        mb.invoke(
            Some(s),
            a,
            add_force,
            &[fx.into(), fy.into(), fz.into()],
            LocalityHint::AlwaysLocal,
        );
        mb.touch(&[s]);
        let nfx = mb.binl(BinOp::Sub, 0.0f64, fx);
        let nfy = mb.binl(BinOp::Sub, 0.0f64, fy);
        let nfz = mb.binl(BinOp::Sub, 0.0f64, fz);
        (nfx, nfy, nfz)
    };

    // Both atoms local (§4.3.2 case 1): the computation is small and all
    // of its sub-invocations (coordinate accessors, force accumulation)
    // are speculatively inlined; the pair invocation itself is the unit
    // the hybrid model turns into a plain stack call.
    let do_pair_local = pb.method(worker, "do_pair_local", 2, |mb| {
        let (a, b) = (mb.arg(0), mb.arg(1));
        let s = mb.slot();
        let sx = mb.invoke_local(a, get_x, &[]);
        let sy = mb.invoke_local(a, get_y, &[]);
        let sz = mb.invoke_local(a, get_z, &[]);
        let tx = mb.invoke_local(b, get_x, &[]);
        let ty = mb.invoke_local(b, get_y, &[]);
        let tz = mb.invoke_local(b, get_z, &[]);
        mb.touch(&[sx, sy, sz, tx, ty, tz]);
        let c = Coords {
            xi: mb.get_slot(sx),
            yi: mb.get_slot(sy),
            zi: mb.get_slot(sz),
            xj: mb.get_slot(tx),
            yj: mb.get_slot(ty),
            zj: mb.get_slot(tz),
        };
        let (nfx, nfy, nfz) = force_body(mb, a, c, s);
        mb.invoke(
            Some(s),
            b,
            add_force,
            &[nfx.into(), nfy.into(), nfz.into()],
            LocalityHint::AlwaysLocal,
        );
        mb.touch(&[s]);
        mb.reply_nil();
    });

    // Remote partner: on a cache hit the computation completes on the
    // stack; on a miss it blocks fetching the coordinates and falls back
    // (§4.3.2 cases 2 and 3). The remote force increment is combined into
    // the cache, flushed once per iteration.
    let do_pair_cached = pb.method(worker, "do_pair_cached", 1, |mb| {
        let p = mb.arg(0);
        let s = mb.slot();
        let a = mb.get_elem(pi, p);
        let k = mb.get_elem(pj_cidx, p);
        let valid = mb.get_elem(cvalid, k);
        let miss = mb.binl(BinOp::Eq, valid, 0);
        mb.if_(miss, |mb| {
            // Communication required: round-trip to the remote atom, which
            // pushes its coordinates back into our cache.
            let me = mb.self_ref();
            let ra = mb.get_elem(cache_atoms, k);
            mb.invoke(
                Some(s),
                ra,
                push_coords,
                &[me.into(), k.into()],
                LocalityHint::Unknown,
            );
            mb.touch(&[s]);
            mb.set_elem(cvalid, k, 1i64);
        });
        let sx = mb.invoke_local(a, get_x, &[]);
        let sy = mb.invoke_local(a, get_y, &[]);
        let sz = mb.invoke_local(a, get_z, &[]);
        mb.touch(&[sx, sy, sz]);
        let c = Coords {
            xi: mb.get_slot(sx),
            yi: mb.get_slot(sy),
            zi: mb.get_slot(sz),
            xj: mb.get_elem(cx, k),
            yj: mb.get_elem(cy, k),
            zj: mb.get_elem(cz, k),
        };
        let (nfx, nfy, nfz) = force_body(mb, a, c, s);
        let ax = mb.get_elem(cfx, k);
        let sx2 = mb.binl(BinOp::Add, ax, nfx);
        mb.set_elem(cfx, k, sx2);
        let ay = mb.get_elem(cfy, k);
        let sy2 = mb.binl(BinOp::Add, ay, nfy);
        mb.set_elem(cfy, k, sy2);
        let az = mb.get_elem(cfz, k);
        let sz2 = mb.binl(BinOp::Add, az, nfz);
        mb.set_elem(cfz, k, sz2);
        mb.reply_nil();
    });

    let w_compute = pb.method(worker, "compute", 0, |mb| {
        let n = mb.arr_len(pi);
        let s = mb.slot();
        let me = mb.self_ref();
        mb.for_range(0i64, n, |mb, p| {
            let kind = mb.get_elem(pj_kind, p);
            let is_local = mb.binl(BinOp::Eq, kind, 0);
            mb.if_else(
                is_local,
                |mb| {
                    let a = mb.get_elem(pi, p);
                    let b = mb.get_elem(pj_ref, p);
                    mb.invoke(
                        Some(s),
                        me,
                        do_pair_local,
                        &[a.into(), b.into()],
                        LocalityHint::AlwaysLocal,
                    );
                    mb.touch(&[s]);
                },
                |mb| {
                    mb.invoke(
                        Some(s),
                        me,
                        do_pair_cached,
                        &[p.into()],
                        LocalityHint::AlwaysLocal,
                    );
                    mb.touch(&[s]);
                },
            );
        });
        mb.reply_nil();
    });

    let w_flush = pb.method(worker, "flush", 0, |mb| {
        let n = mb.arr_len(cache_atoms);
        let join = mb.slot();
        mb.join_init(join, n);
        mb.for_range(0i64, n, |mb, k| {
            let a = mb.get_elem(cache_atoms, k);
            let x = mb.get_elem(cfx, k);
            let y = mb.get_elem(cfy, k);
            let z = mb.get_elem(cfz, k);
            mb.invoke(
                Some(join),
                a,
                add_force,
                &[x.into(), y.into(), z.into()],
                LocalityHint::Unknown,
            );
            mb.set_elem(cfx, k, 0.0f64);
            mb.set_elem(cfy, k, 0.0f64);
            mb.set_elem(cfz, k, 0.0f64);
            mb.set_elem(cvalid, k, 0i64);
        });
        mb.touch(&[join]);
        mb.reply_nil();
    });

    // ---- Main ----
    let main = pb.class("Main", false);
    let m_workers = pb.array_field(main, "workers");
    // Phase fan-out: one acked multicast over the workers.
    let fan = |pb: &mut ProgramBuilder, name: &str, m: MethodId| {
        pb.method(main, name, 0, |mb| {
            let s = mb.multicast_into(m_workers, m, &[]);
            mb.touch(&[s]);
            mb.reply_nil();
        })
    };
    let m_compute = fan(&mut pb, "run_compute", w_compute);
    let m_flush = fan(&mut pb, "run_flush", w_flush);

    MdProgram {
        program: pb.finish(),
        push_coords,
        add_force,
        get_x,
        get_y,
        get_z,
        f_x,
        f_y,
        f_z,
        f_fx,
        f_fy,
        f_fz,
        do_pair_local,
        do_pair_cached,
        w_store3,
        w_compute,
        w_flush,
        wf: WorkerFields {
            pi,
            pj_kind,
            pj_ref,
            pj_cidx,
            cache_atoms,
            cvalid,
            cx,
            cy,
            cz,
            cfx,
            cfy,
            cfz,
        },
        m_compute,
        m_flush,
        m_workers,
    }
}

/// How atoms are placed on nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// Uniformly random assignment (ignores spatial structure).
    Random,
    /// Orthogonal recursive bisection: spatially proximate atoms
    /// co-located.
    Spatial,
}

impl std::fmt::Display for Layout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Layout::Random => write!(f, "random"),
            Layout::Spatial => write!(f, "spatial"),
        }
    }
}

/// The synthetic particle system + pair list, shared with the native
/// reference.
#[derive(Debug, Clone)]
pub struct MdSystem {
    /// Atom positions.
    pub pos: Vec<[f64; 3]>,
    /// Cutoff pairs `(i, j)`, i < j.
    pub pairs: Vec<(u32, u32)>,
    /// Atom → node assignment.
    pub owner: Vec<NodeId>,
}

/// Generate `n_atoms` in Gaussian-ish clusters inside a box, list all
/// pairs within `cutoff` (via a cell list), and assign owners.
pub fn generate(n_atoms: u32, cutoff: f64, nodes: u32, layout: Layout, seed: u64) -> MdSystem {
    let mut rng = SmallRng::seed_from_u64(seed);
    // Box sized for roughly constant density; clusters mimic a folded
    // protein's spatial locality.
    let box_l = (n_atoms as f64).cbrt() * 1.2;
    let n_clusters = (n_atoms / 64).max(1);
    let centers: Vec<[f64; 3]> = (0..n_clusters)
        .map(|_| {
            [
                rng.gen_range(0.0..box_l),
                rng.gen_range(0.0..box_l),
                rng.gen_range(0.0..box_l),
            ]
        })
        .collect();
    let mut pos = Vec::with_capacity(n_atoms as usize);
    for i in 0..n_atoms {
        let c = centers[(i % n_clusters) as usize];
        let jitter = 1.5;
        pos.push([
            (c[0] + rng.gen_range(-jitter..jitter)).rem_euclid(box_l),
            (c[1] + rng.gen_range(-jitter..jitter)).rem_euclid(box_l),
            (c[2] + rng.gen_range(-jitter..jitter)).rem_euclid(box_l),
        ]);
    }

    // Cell list for cutoff pairs.
    let cell = cutoff.max(0.3);
    let dims = ((box_l / cell).ceil() as i64).max(1);
    let key = |p: &[f64; 3]| -> (i64, i64, i64) {
        (
            (p[0] / cell) as i64,
            (p[1] / cell) as i64,
            (p[2] / cell) as i64,
        )
    };
    let mut cells: std::collections::BTreeMap<(i64, i64, i64), Vec<u32>> = Default::default();
    for (i, p) in pos.iter().enumerate() {
        cells.entry(key(p)).or_default().push(i as u32);
    }
    let c2 = cutoff * cutoff;
    let mut pairs = Vec::new();
    for (&(cx, cy, cz), atoms) in &cells {
        for dx in -1..=1i64 {
            for dy in -1..=1i64 {
                for dz in -1..=1i64 {
                    let nk = (cx + dx, cy + dy, cz + dz);
                    if nk.0 < 0
                        || nk.1 < 0
                        || nk.2 < 0
                        || nk.0 >= dims
                        || nk.1 >= dims
                        || nk.2 >= dims
                    {
                        continue;
                    }
                    let Some(nbrs) = cells.get(&nk) else { continue };
                    for &i in atoms {
                        for &j in nbrs {
                            if i < j {
                                let (a, b) = (&pos[i as usize], &pos[j as usize]);
                                let d = [a[0] - b[0], a[1] - b[1], a[2] - b[2]];
                                if d[0] * d[0] + d[1] * d[1] + d[2] * d[2] <= c2 {
                                    pairs.push((i, j));
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    pairs.sort_unstable();
    pairs.dedup();

    let owner = match layout {
        Layout::Spatial => orb_partition(&pos, nodes),
        Layout::Random => (0..n_atoms)
            .map(|_| NodeId(rng.gen_range(0..nodes)))
            .collect(),
    };
    MdSystem { pos, pairs, owner }
}

/// A placed MD instance.
pub struct MdInstance {
    /// Program handles.
    pub ids: MdProgram,
    /// Driver.
    pub main: ObjRef,
    /// Atom objects, by atom index.
    pub atom_refs: Vec<ObjRef>,
}

/// Place the system: atom objects on their owners, a `PairWorker` per
/// node owning the pairs whose first atom lives there, with a coordinate
/// cache entry for every distinct remote partner.
pub fn setup(rt: &mut Runtime, ids: &MdProgram, sys: &MdSystem) -> MdInstance {
    let atom_refs: Vec<ObjRef> = sys
        .owner
        .iter()
        .map(|o| rt.alloc_object_by_name("Atom", *o))
        .collect();
    for (i, r) in atom_refs.iter().enumerate() {
        rt.set_field(*r, ids.f_x, Value::Float(sys.pos[i][0]));
        rt.set_field(*r, ids.f_y, Value::Float(sys.pos[i][1]));
        rt.set_field(*r, ids.f_z, Value::Float(sys.pos[i][2]));
        rt.set_field(*r, ids.f_fx, Value::Float(0.0));
        rt.set_field(*r, ids.f_fy, Value::Float(0.0));
        rt.set_field(*r, ids.f_fz, Value::Float(0.0));
    }

    // Partition pairs by the owner of the first atom.
    let n_nodes = rt.n_nodes();
    struct W {
        pi: Vec<Value>,
        kind: Vec<Value>,
        jref: Vec<Value>,
        jcidx: Vec<Value>,
        cache: Vec<Value>,
        cache_of: std::collections::BTreeMap<u32, usize>,
    }
    let mut ws: Vec<W> = (0..n_nodes)
        .map(|_| W {
            pi: Vec::new(),
            kind: Vec::new(),
            jref: Vec::new(),
            jcidx: Vec::new(),
            cache: Vec::new(),
            cache_of: Default::default(),
        })
        .collect();
    for &(i, j) in &sys.pairs {
        let home = sys.owner[i as usize].idx();
        let w = &mut ws[home];
        w.pi.push(Value::Obj(atom_refs[i as usize]));
        if sys.owner[j as usize].idx() == home {
            w.kind.push(Value::Int(0));
            w.jref.push(Value::Obj(atom_refs[j as usize]));
            w.jcidx.push(Value::Int(0));
        } else {
            let next = w.cache.len();
            let cidx = *w.cache_of.entry(j).or_insert(next);
            if cidx == next {
                w.cache.push(Value::Obj(atom_refs[j as usize]));
            }
            w.kind.push(Value::Int(1));
            w.jref.push(Value::Nil);
            w.jcidx.push(Value::Int(cidx as i64));
        }
    }

    let mut workers = Vec::new();
    for (nid, w) in ws.into_iter().enumerate() {
        let wo = rt.alloc_object_by_name("PairWorker", NodeId(nid as u32));
        let ncache = w.cache.len();
        rt.set_array(wo, ids.wf.pi, w.pi);
        rt.set_array(wo, ids.wf.pj_kind, w.kind);
        rt.set_array(wo, ids.wf.pj_ref, w.jref);
        rt.set_array(wo, ids.wf.pj_cidx, w.jcidx);
        rt.set_array(wo, ids.wf.cache_atoms, w.cache);
        rt.set_array(wo, ids.wf.cvalid, vec![Value::Int(0); ncache]);
        for f in [ids.wf.cx, ids.wf.cy, ids.wf.cz] {
            rt.set_array(wo, f, vec![Value::Float(0.0); ncache]);
        }
        for f in [ids.wf.cfx, ids.wf.cfy, ids.wf.cfz] {
            rt.set_array(wo, f, vec![Value::Float(0.0); ncache]);
        }
        workers.push(Value::Obj(wo));
    }
    // Remote workers first, the driver's co-located worker last (see sor).
    workers.rotate_left(1);
    let main = rt.alloc_object_by_name("Main", NodeId(0));
    rt.set_array(main, ids.m_workers, workers);
    MdInstance {
        ids: ids.clone(),
        main,
        atom_refs,
    }
}

/// Run one force iteration (compute with lazy coordinate caching, then
/// flush the combined remote force increments).
pub fn run_iteration(rt: &mut Runtime, inst: &MdInstance) -> Result<(), Trap> {
    rt.call(inst.main, inst.ids.m_compute, &[])?;
    rt.call(inst.main, inst.ids.m_flush, &[])?;
    Ok(())
}

/// Extract the force vectors.
pub fn forces(rt: &Runtime, inst: &MdInstance) -> Vec<[f64; 3]> {
    inst.atom_refs
        .iter()
        .map(|r| {
            let g = |f| match rt.get_field(*r, f) {
                Value::Float(x) => x,
                v => panic!("non-float force {v:?}"),
            };
            [g(inst.ids.f_fx), g(inst.ids.f_fy), g(inst.ids.f_fz)]
        })
        .collect()
}

/// Native reference force computation over the same pair list.
pub fn native_forces(sys: &MdSystem) -> Vec<[f64; 3]> {
    let mut f = vec![[0.0f64; 3]; sys.pos.len()];
    for &(i, j) in &sys.pairs {
        let (a, b) = (sys.pos[i as usize], sys.pos[j as usize]);
        let d = [a[0] - b[0], a[1] - b[1], a[2] - b[2]];
        let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2] + 0.01;
        let s = 1.0 / r2;
        for k in 0..3 {
            f[i as usize][k] += s * d[k];
            f[j as usize][k] -= s * d[k];
        }
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use hem_analysis::{InterfaceSet, Schema};
    use hem_core::ExecMode;
    use hem_machine::cost::CostModel;

    fn run_layout(layout: Layout, mode: ExecMode) -> (Vec<[f64; 3]>, Runtime, MdSystem) {
        let ids = build();
        let sys = generate(200, 1.2, 4, layout, 7);
        let mut rt = crate::make_runtime(
            ids.program.clone(),
            4,
            CostModel::cm5(),
            mode,
            InterfaceSet::Full,
        );
        let inst = setup(&mut rt, &ids, &sys);
        run_iteration(&mut rt, &inst).expect("md iteration");
        let f = forces(&rt, &inst);
        (f, rt, sys)
    }

    fn close(a: &[[f64; 3]], b: &[[f64; 3]]) {
        assert_eq!(a.len(), b.len());
        for (k, (x, y)) in a.iter().zip(b).enumerate() {
            for c in 0..3 {
                let d = (x[c] - y[c]).abs();
                let m = x[c].abs().max(y[c].abs()).max(1.0);
                assert!(d / m < 1e-9, "atom {k} axis {c}: {} vs {}", x[c], y[c]);
            }
        }
    }

    #[test]
    fn pair_list_is_sane() {
        let sys = generate(200, 1.2, 4, Layout::Spatial, 7);
        assert!(!sys.pairs.is_empty(), "clusters must produce cutoff pairs");
        for &(i, j) in &sys.pairs {
            assert!(i < j);
            assert!((j as usize) < sys.pos.len());
        }
    }

    #[test]
    fn schemas_match_the_three_cases() {
        let ids = build();
        let rt = crate::make_runtime(
            ids.program.clone(),
            2,
            CostModel::cm5(),
            ExecMode::Hybrid,
            InterfaceSet::Full,
        );
        assert_eq!(rt.schemas().of(ids.get_x), Schema::NonBlocking);
        assert_eq!(rt.schemas().of(ids.add_force), Schema::NonBlocking);
        assert_eq!(rt.schemas().of(ids.do_pair_local), Schema::NonBlocking);
        assert!(!rt.program().method(ids.do_pair_local).inlinable);
        assert!(rt.program().method(ids.get_x).inlinable);
        assert!(rt.program().method(ids.add_force).inlinable);
        // Cache misses communicate ⇒ may-block; not inlinable.
        assert_eq!(rt.schemas().of(ids.do_pair_cached), Schema::MayBlock);
        assert!(!rt.program().method(ids.do_pair_cached).inlinable);
        assert_eq!(rt.schemas().of(ids.w_compute), Schema::MayBlock);
    }

    #[test]
    fn forces_match_native_spatial() {
        let (f, _, sys) = run_layout(Layout::Spatial, ExecMode::Hybrid);
        close(&f, &native_forces(&sys));
    }

    #[test]
    fn forces_match_native_random() {
        let (f, _, sys) = run_layout(Layout::Random, ExecMode::Hybrid);
        close(&f, &native_forces(&sys));
    }

    #[test]
    fn parallel_only_agrees() {
        let (fh, _, _) = run_layout(Layout::Spatial, ExecMode::Hybrid);
        let (fp, _, _) = run_layout(Layout::Spatial, ExecMode::ParallelOnly);
        close(&fh, &fp);
    }

    #[test]
    fn spatial_layout_localizes_pairs() {
        let (_, rt_s, sys_s) = run_layout(Layout::Spatial, ExecMode::Hybrid);
        let (_, rt_r, sys_r) = run_layout(Layout::Random, ExecMode::Hybrid);
        let local = |sys: &MdSystem| {
            sys.pairs
                .iter()
                .filter(|(i, j)| sys.owner[*i as usize] == sys.owner[*j as usize])
                .count() as f64
                / sys.pairs.len() as f64
        };
        assert!(
            local(&sys_s) > local(&sys_r) + 0.3,
            "ORB pair locality {} should clearly beat random {}",
            local(&sys_s),
            local(&sys_r)
        );
        // And the hybrid should win more under the spatial layout.
        let _ = (rt_s, rt_r);
    }

    #[test]
    fn hybrid_wins_more_with_spatial_locality() {
        // The effect is qualitative, and any single generation seed is
        // noisy: average the hybrid speedup over a few seeds per layout
        // rather than betting the assertion on one draw.
        let run = |layout, mode, seed| {
            let ids = build();
            let sys = generate(400, 1.2, 8, layout, seed);
            let mut rt = crate::make_runtime(
                ids.program.clone(),
                8,
                CostModel::cm5(),
                mode,
                InterfaceSet::Full,
            );
            let inst = setup(&mut rt, &ids, &sys);
            run_iteration(&mut rt, &inst).expect("md");
            rt.makespan() as f64
        };
        let mean = |layout: Layout| {
            let seeds = [5u64, 11, 13, 23];
            seeds
                .iter()
                .map(|&s| run(layout, ExecMode::ParallelOnly, s) / run(layout, ExecMode::Hybrid, s))
                .sum::<f64>()
                / seeds.len() as f64
        };
        let sp = mean(Layout::Spatial);
        let rd = mean(Layout::Random);
        assert!(sp > 1.05, "spatial hybrid speedup {sp}");
        assert!(sp > rd, "spatial speedup {sp} should exceed random {rd}");
    }

    #[test]
    fn caching_combines_messages() {
        // The number of coordinate-fetch round trips must track the number
        // of *distinct* remote atoms per worker, not remote pairs.
        let ids = build();
        let sys = generate(200, 1.2, 4, Layout::Random, 7);
        let mut rt = crate::make_runtime(
            ids.program.clone(),
            4,
            CostModel::cm5(),
            ExecMode::Hybrid,
            InterfaceSet::Full,
        );
        let inst = setup(&mut rt, &ids, &sys);
        rt.call(inst.main, inst.ids.m_compute, &[]).unwrap();
        let msgs = rt.stats().totals().msgs_sent;
        let remote_pairs = sys
            .pairs
            .iter()
            .filter(|(i, j)| sys.owner[*i as usize] != sys.owner[*j as usize])
            .count() as u64;
        // Each distinct remote atom costs 2 request messages (push_coords
        // out, store3 back); worker fan-out adds a handful more.
        assert!(
            msgs < remote_pairs * 2,
            "compute-phase msgs {msgs} should undercut per-pair traffic {}",
            remote_pairs * 2
        );
    }
}
