//! Automatic data layout — the paper's future work ("We are currently
//! working on automating data layout, migration and selection of
//! communication and synchronization structures").
//!
//! The execution model adapts to whatever placement it is given; this
//! module closes the loop by *computing* placements. Two deterministic
//! partitioners:
//!
//! * [`greedy_graph_layout`] — balanced greedy edge-locality placement
//!   for irregular graph data (EM3D-style): items are placed where most
//!   of their already-placed neighbours live, subject to a capacity cap;
//! * `hem_machine::topology::orb_partition` (re-exported) — geometric
//!   bisection for spatial data (MD-style).
//!
//! `examples/auto_layout.rs` shows the greedy layout recovering most of
//! the performance of a hand-tuned high-locality placement from a
//! randomly placed EM3D graph.

use crate::em3d::Em3dGraph;
use hem_machine::NodeId;

pub use hem_machine::topology::orb_partition;

/// Deterministic greedy locality partitioner for an undirected graph.
///
/// Items are visited in breadth-first order seeded from the
/// highest-degree unplaced item; each is assigned to the machine node
/// holding the most of its already-placed neighbours, unless that node is
/// full (capacity = `⌈n/nodes⌉ · balance_slack`), in which case the least
/// loaded node wins. Ties break toward lower node ids, so the layout is a
/// pure function of its inputs.
pub fn greedy_graph_layout(
    n_items: usize,
    edges: &[(u32, u32)],
    nodes: u32,
    balance_slack: f64,
) -> Vec<NodeId> {
    assert!(nodes >= 1);
    assert!(balance_slack >= 1.0, "slack below 1.0 cannot fit all items");
    let cap = ((n_items as f64 / nodes as f64).ceil() * balance_slack).ceil() as usize;

    // Adjacency.
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n_items];
    for &(a, b) in edges {
        adj[a as usize].push(b);
        adj[b as usize].push(a);
    }

    let mut owner: Vec<Option<NodeId>> = vec![None; n_items];
    let mut load = vec![0usize; nodes as usize];
    let mut queue = std::collections::VecDeque::new();

    // Seed order: by descending degree, index ascending.
    let mut seeds: Vec<u32> = (0..n_items as u32).collect();
    seeds.sort_by_key(|&i| (std::cmp::Reverse(adj[i as usize].len()), i));

    let place =
        |i: u32, owner: &mut Vec<Option<NodeId>>, load: &mut Vec<usize>, adj: &Vec<Vec<u32>>| {
            // Count placed neighbours per node.
            let mut counts = vec![0usize; load.len()];
            for &nb in &adj[i as usize] {
                if let Some(o) = owner[nb as usize] {
                    counts[o.idx()] += 1;
                }
            }
            // Best non-full node by (neighbour count desc, load asc, id asc).
            let mut best: Option<usize> = None;
            for n in 0..load.len() {
                if load[n] >= cap {
                    continue;
                }
                best = Some(match best {
                    None => n,
                    Some(b) => {
                        let key = |x: usize| (std::cmp::Reverse(counts[x]), load[x], x);
                        if key(n) < key(b) {
                            n
                        } else {
                            b
                        }
                    }
                });
            }
            let n = best.expect("capacity ≥ n/nodes guarantees a free node");
            owner[i as usize] = Some(NodeId(n as u32));
            load[n] += 1;
        };

    for seed in seeds {
        if owner[seed as usize].is_some() {
            continue;
        }
        queue.push_back(seed);
        while let Some(i) = queue.pop_front() {
            if owner[i as usize].is_some() {
                continue;
            }
            place(i, &mut owner, &mut load, &adj);
            for &nb in &adj[i as usize] {
                if owner[nb as usize].is_none() {
                    queue.push_back(nb);
                }
            }
        }
    }
    let mut owner: Vec<NodeId> = owner.into_iter().map(|o| o.expect("all placed")).collect();

    // Kernighan–Lin-flavoured refinement: greedily move items to the node
    // holding most of their neighbours while the balance cap allows,
    // until a sweep makes no move. Deterministic sweep order.
    loop {
        let mut moved = false;
        for i in 0..n_items {
            let cur = owner[i];
            let mut counts = vec![0usize; nodes as usize];
            for &nb in &adj[i] {
                counts[owner[nb as usize].idx()] += 1;
            }
            let mut best = cur;
            for n in 0..nodes as usize {
                let cand = NodeId(n as u32);
                if cand == cur || load[n] >= cap {
                    continue;
                }
                if counts[n] > counts[best.idx()] {
                    best = cand;
                }
            }
            if best != cur {
                load[cur.idx()] -= 1;
                load[best.idx()] += 1;
                owner[i] = best;
                moved = true;
            }
        }
        if !moved {
            break;
        }
    }
    owner
}

/// Fraction of edges whose endpoints share a node under `owner`.
pub fn edge_locality(edges: &[(u32, u32)], owner: &[NodeId]) -> f64 {
    if edges.is_empty() {
        return 1.0;
    }
    let local = edges
        .iter()
        .filter(|(a, b)| owner[*a as usize] == owner[*b as usize])
        .count();
    local as f64 / edges.len() as f64
}

/// Re-place an EM3D graph with the greedy partitioner: the bipartite
/// E/H node sets are laid out jointly (item ids: E nodes first, then H),
/// replacing the placements `generate` chose.
pub fn auto_layout_em3d(g: &mut Em3dGraph, nodes: u32, balance_slack: f64) {
    let ne = g.n_each as usize;
    let mut edges = Vec::new();
    for (e, ins) in g.e_in.iter().enumerate() {
        for h in ins {
            edges.push((e as u32, g.n_each + *h));
        }
    }
    for (h, ins) in g.h_in.iter().enumerate() {
        for e in ins {
            edges.push((*e, g.n_each + h as u32));
        }
    }
    let owner = greedy_graph_layout(2 * ne, &edges, nodes, balance_slack);
    g.e_owner = owner[..ne].to_vec();
    g.h_owner = owner[ne..].to_vec();
}

/// Locality of an EM3D graph's dependency edges under its placements.
pub fn em3d_locality(g: &Em3dGraph) -> f64 {
    let mut total = 0usize;
    let mut local = 0usize;
    for (e, ins) in g.e_in.iter().enumerate() {
        for h in ins {
            total += 1;
            if g.e_owner[e] == g.h_owner[*h as usize] {
                local += 1;
            }
        }
    }
    for (h, ins) in g.h_in.iter().enumerate() {
        for e in ins {
            total += 1;
            if g.h_owner[h] == g.e_owner[*e as usize] {
                local += 1;
            }
        }
    }
    local as f64 / total.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two 8-cliques joined by one edge, on two nodes: the partitioner
    /// must put each clique on its own node.
    #[test]
    fn separates_cliques() {
        let mut edges = Vec::new();
        for base in [0u32, 8] {
            for i in 0..8 {
                for j in i + 1..8 {
                    edges.push((base + i, base + j));
                }
            }
        }
        edges.push((0, 8));
        let owner = greedy_graph_layout(16, &edges, 2, 1.0);
        for i in 1..8 {
            assert_eq!(owner[i], owner[0], "clique 1 split");
            assert_eq!(owner[8 + i], owner[8], "clique 2 split");
        }
        assert_ne!(owner[0], owner[8], "cliques must not share a node");
        assert!(edge_locality(&edges, &owner) > 0.98);
    }

    #[test]
    fn respects_balance_cap() {
        // A single hub connected to everyone: locality pull wants one
        // node, the cap forces an even split.
        let edges: Vec<(u32, u32)> = (1..32u32).map(|i| (0, i)).collect();
        let owner = greedy_graph_layout(32, &edges, 4, 1.0);
        let mut load = [0usize; 4];
        for o in &owner {
            load[o.idx()] += 1;
        }
        assert_eq!(load, [8, 8, 8, 8]);
    }

    #[test]
    fn deterministic() {
        let edges: Vec<(u32, u32)> = (0..64u32).map(|i| (i, (i * 7 + 1) % 64)).collect();
        let a = greedy_graph_layout(64, &edges, 4, 1.2);
        let b = greedy_graph_layout(64, &edges, 4, 1.2);
        assert_eq!(a, b);
    }

    #[test]
    fn improves_em3d_locality_over_random() {
        let mut g = crate::em3d::generate(64, 4, 8, 0.0, 42);
        let before = em3d_locality(&g);
        auto_layout_em3d(&mut g, 8, 1.25);
        let after = em3d_locality(&g);
        assert!(
            after > before + 0.15,
            "greedy layout {after:.3} should clearly beat random {before:.3}"
        );
        // Still balanced.
        let mut load = vec![0usize; 8];
        for o in g.e_owner.iter().chain(&g.h_owner) {
            load[o.idx()] += 1;
        }
        let cap = ((128.0 / 8.0f64).ceil() * 1.25).ceil() as usize;
        assert!(load.iter().all(|l| *l <= cap), "{load:?} exceeds cap {cap}");
    }

    #[test]
    fn relayout_preserves_results() {
        use hem_analysis::InterfaceSet;
        use hem_core::ExecMode;
        use hem_machine::cost::CostModel;
        // The layout changes placement, never values: results must match
        // the native reference exactly (pull) after auto-layout.
        let ids = crate::em3d::build(4);
        let mut g = crate::em3d::generate(24, 4, 4, 0.0, 9);
        auto_layout_em3d(&mut g, 4, 1.25);
        let mut rt = crate::make_runtime(
            ids.program.clone(),
            4,
            CostModel::cm5(),
            ExecMode::Hybrid,
            InterfaceSet::Full,
        );
        let inst = crate::em3d::setup(&mut rt, &ids, &g);
        crate::em3d::run(&mut rt, &inst, crate::em3d::Style::Pull, 2).unwrap();
        let (e, h) = crate::em3d::values(&rt, &inst);
        let (en, hn) = crate::em3d::native(&g, 2);
        assert_eq!(e, en);
        assert_eq!(h, hn);
    }
}
