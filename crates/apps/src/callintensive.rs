//! Function-call intensive benchmarks (Table 3).
//!
//! The paper evaluates sequential efficiency on small programs "written by
//! different authors with a variety of programming styles" and names fib
//! and tak in a footnote. We use four: **fib**, **tak**, **nqueens** and
//! **qsort**. All express their recursion as fine-grained concurrent
//! method invocations with implicit futures (two parallel calls + one
//! touch per level for fib/tak/qsort; a serial accumulation loop for
//! nqueens), so under a parallel-only execution every call costs a heap
//! context while the hybrid model collapses them onto the stack.

use hem_ir::{BinOp, MethodId, Program, ProgramBuilder};

/// Program + entry points for the Table 3 suite. All methods live on one
/// `Math` object (lock-free class — recursion must not self-deadlock).
#[derive(Debug, Clone)]
pub struct CallSuite {
    /// The program.
    pub program: Program,
    /// `fib(n)`.
    pub fib: MethodId,
    /// `tak(x, y, z)`.
    pub tak: MethodId,
    /// `nqueens(n)` — number of solutions.
    pub nqueens: MethodId,
    /// `qsort_run(n, seed)` — fills an array with an LCG sequence, sorts
    /// it, and replies with a checksum proving sortedness.
    pub qsort_run: MethodId,
    /// `nrev_run(n)` — builds an n-element cons list, naive-reverses it,
    /// and replies with the sum of the reversed list (the classic Lisp
    /// `nrev` benchmark; exercises dynamic allocation).
    pub nrev_run: MethodId,
    /// `ack(m, n)` — Ackermann's function.
    pub ack: MethodId,
}

/// Build the suite.
pub fn build() -> CallSuite {
    let mut pb = ProgramBuilder::new();
    let math = pb.class("Math", false);
    let data = pb.array_field(math, "data");

    // ---- fib ----
    let fib = pb.declare(math, "fib", 1);
    pb.define(fib, |mb| {
        let n = mb.arg(0);
        let small = mb.binl(BinOp::Lt, n, 2);
        mb.if_else(
            small,
            |mb| mb.reply(n),
            |mb| {
                let me = mb.self_ref();
                let a = mb.binl(BinOp::Sub, n, 1);
                let b = mb.binl(BinOp::Sub, n, 2);
                let s1 = mb.invoke_local(me, fib, &[a.into()]);
                let s2 = mb.invoke_local(me, fib, &[b.into()]);
                mb.touch(&[s1, s2]);
                let x = mb.get_slot(s1);
                let y = mb.get_slot(s2);
                let r = mb.binl(BinOp::Add, x, y);
                mb.reply(r);
            },
        );
    });

    // ---- tak ----
    let tak = pb.declare(math, "tak", 3);
    pb.define(tak, |mb| {
        let (x, y, z) = (mb.arg(0), mb.arg(1), mb.arg(2));
        let cond = mb.binl(BinOp::Lt, y, x);
        mb.if_else(
            cond,
            |mb| {
                let me = mb.self_ref();
                let x1 = mb.binl(BinOp::Sub, x, 1);
                let y1 = mb.binl(BinOp::Sub, y, 1);
                let z1 = mb.binl(BinOp::Sub, z, 1);
                let s1 = mb.invoke_local(me, tak, &[x1.into(), y.into(), z.into()]);
                let s2 = mb.invoke_local(me, tak, &[y1.into(), z.into(), x.into()]);
                let s3 = mb.invoke_local(me, tak, &[z1.into(), x.into(), y.into()]);
                mb.touch(&[s1, s2, s3]);
                let a = mb.get_slot(s1);
                let b = mb.get_slot(s2);
                let c = mb.get_slot(s3);
                let s4 = mb.invoke_local(me, tak, &[a.into(), b.into(), c.into()]);
                let r = mb.touch_get(s4);
                mb.reply(r);
            },
            |mb| mb.reply(z),
        );
    });

    // ---- nqueens (bitmask formulation) ----
    // nq(ld, cols, rd, all): count completions of the current partial
    // placement. Serial accumulation over candidate positions (Table 3 is
    // a sequential benchmark).
    let nq = pb.declare(math, "nq", 4);
    pb.define(nq, |mb| {
        let (ld, cols, rd, all) = (mb.arg(0), mb.arg(1), mb.arg(2), mb.arg(3));
        let full = mb.binl(BinOp::Eq, cols, all);
        mb.if_else(
            full,
            |mb| mb.reply(1i64),
            |mb| {
                let me = mb.self_ref();
                let acc = mb.local();
                mb.mov(acc, 0i64);
                let taken = mb.binl(BinOp::BitOr, ld, cols);
                let taken2 = mb.binl(BinOp::BitOr, taken, rd);
                let free0 = mb.binl(BinOp::BitXor, taken2, -1i64);
                let poss = mb.local();
                mb.bin(poss, BinOp::BitAnd, free0, all);
                let s = mb.slot();
                mb.while_(
                    |mb| mb.binl(BinOp::Ne, poss, 0).into(),
                    |mb| {
                        let negp = mb.binl(BinOp::Sub, 0, poss);
                        let bit = mb.binl(BinOp::BitAnd, poss, negp);
                        mb.bin(poss, BinOp::BitXor, poss, bit);
                        let ld2a = mb.binl(BinOp::BitOr, ld, bit);
                        let ld2b = mb.binl(BinOp::Shl, ld2a, 1);
                        let ld2 = mb.binl(BinOp::BitAnd, ld2b, all);
                        let cols2 = mb.binl(BinOp::BitOr, cols, bit);
                        let rd2a = mb.binl(BinOp::BitOr, rd, bit);
                        let rd2 = mb.binl(BinOp::Shr, rd2a, 1);
                        mb.invoke(
                            Some(s),
                            me,
                            nq,
                            &[ld2.into(), cols2.into(), rd2.into(), all.into()],
                            hem_ir::LocalityHint::AlwaysLocal,
                        );
                        mb.touch(&[s]);
                        let v = mb.get_slot(s);
                        mb.bin(acc, BinOp::Add, acc, v);
                    },
                );
                mb.reply(acc);
            },
        );
    });
    let nqueens = pb.declare(math, "nqueens", 1);
    pb.define(nqueens, |mb| {
        let n = mb.arg(0);
        let me = mb.self_ref();
        let one = mb.local();
        mb.mov(one, 1i64);
        let shifted = mb.binl(BinOp::Shl, one, n);
        let all = mb.binl(BinOp::Sub, shifted, 1);
        let s = mb.invoke_local(me, nq, &[0i64.into(), 0i64.into(), 0i64.into(), all.into()]);
        let r = mb.touch_get(s);
        mb.reply(r);
    });

    // ---- qsort over the object's `data` array field ----
    // Hoare-style partition; the two recursive sorts are issued as two
    // futures touched together (fine-grained concurrency, like fib).
    let qsort = pb.declare(math, "qsort", 2); // (lo, hi) inclusive
    pb.define(qsort, |mb| {
        let (lo, hi) = (mb.arg(0), mb.arg(1));
        let small = mb.binl(BinOp::Ge, lo, hi);
        mb.if_else(
            small,
            |mb| mb.reply_nil(),
            |mb| {
                let me = mb.self_ref();
                // Lomuto partition on data[lo..=hi] with pivot data[hi].
                let pivot = mb.get_elem(data, hi);
                let i = mb.local();
                mb.mov(i, lo);
                let j = mb.local();
                mb.mov(j, lo);
                mb.while_(
                    |mb| mb.binl(BinOp::Lt, j, hi).into(),
                    |mb| {
                        let dj = mb.get_elem(data, j);
                        let le = mb.binl(BinOp::Le, dj, pivot);
                        mb.if_(le, |mb| {
                            let di = mb.get_elem(data, i);
                            let djj = mb.get_elem(data, j);
                            mb.set_elem(data, i, djj);
                            mb.set_elem(data, j, di);
                            mb.bin(i, BinOp::Add, i, 1);
                        });
                        mb.bin(j, BinOp::Add, j, 1);
                    },
                );
                let di = mb.get_elem(data, i);
                let dh = mb.get_elem(data, hi);
                mb.set_elem(data, i, dh);
                mb.set_elem(data, hi, di);
                let i1 = mb.binl(BinOp::Sub, i, 1);
                let i2 = mb.binl(BinOp::Add, i, 1);
                let s1 = mb.invoke_local(me, qsort, &[lo.into(), i1.into()]);
                let s2 = mb.invoke_local(me, qsort, &[i2.into(), hi.into()]);
                mb.touch(&[s1, s2]);
                mb.reply_nil();
            },
        );
    });
    let qsort_run = pb.declare(math, "qsort_run", 2); // (n, seed)
    pb.define(qsort_run, |mb| {
        let (n, seed) = (mb.arg(0), mb.arg(1));
        let me = mb.self_ref();
        mb.arr_new(data, n);
        // Fill with a 31-bit LCG sequence.
        let x = mb.local();
        mb.mov(x, seed);
        mb.for_range(0i64, n, |mb, k| {
            let m1 = mb.binl(BinOp::Mul, x, 1103515245i64);
            let a1 = mb.binl(BinOp::Add, m1, 12345i64);
            mb.bin(x, BinOp::BitAnd, a1, 0x7fff_ffffi64);
            mb.set_elem(data, k, x);
        });
        let hi = mb.binl(BinOp::Sub, n, 1);
        let s = mb.invoke_local(me, qsort, &[0i64.into(), hi.into()]);
        mb.touch(&[s]);
        // Checksum: sum of element*index differences proves order later;
        // reply a simple sortedness indicator + sum.
        let sum = mb.local();
        mb.mov(sum, 0i64);
        let sorted = mb.local();
        mb.mov(sorted, 1i64);
        mb.for_range(0i64, n, |mb, k| {
            let v = mb.get_elem(data, k);
            mb.bin(sum, BinOp::Add, sum, v);
            let pos = mb.binl(BinOp::Gt, k, 0);
            mb.if_(pos, |mb| {
                let k1 = mb.binl(BinOp::Sub, k, 1);
                let prev = mb.get_elem(data, k1);
                let bad = mb.binl(BinOp::Gt, prev, v);
                mb.if_(bad, |mb| mb.mov(sorted, 0i64));
            });
        });
        let ok = mb.binl(BinOp::Eq, sorted, 1);
        mb.if_else(ok, |mb| mb.reply(sum), |mb| mb.reply(-1i64));
    });

    // ---- nrev over cons cells (dynamic allocation via NewLocal) ----
    let cons = pb.class("Cons", false);
    let head = pb.field(cons, "head");
    let tail = pb.field(cons, "tail");
    let c_init = pb.method(cons, "init", 2, |mb| {
        mb.inlinable();
        mb.set_field(head, mb.arg(0));
        mb.set_field(tail, mb.arg(1));
        let me = mb.self_ref();
        mb.reply(me);
    });
    let c_head = pb.method(cons, "head", 0, |mb| {
        mb.inlinable();
        let v = mb.get_field(head);
        mb.reply(v);
    });
    let c_tail = pb.method(cons, "tail", 0, |mb| {
        mb.inlinable();
        let v = mb.get_field(tail);
        mb.reply(v);
    });

    // Math.cons(h, t): allocate and initialize a cell.
    let mk_cons = pb.method(math, "cons", 2, |mb| {
        let cell = mb.new_local_obj(cons);
        let s = mb.invoke_local(cell, c_init, &[mb.arg(0).into(), mb.arg(1).into()]);
        let v = mb.touch_get(s);
        mb.reply(v);
    });
    let buildlist = pb.declare(math, "buildlist", 1);
    pb.define(buildlist, |mb| {
        let n = mb.arg(0);
        let z = mb.binl(BinOp::Le, n, 0);
        mb.if_else(
            z,
            |mb| mb.reply(hem_ir::Value::Nil),
            |mb| {
                let me = mb.self_ref();
                let n1 = mb.binl(BinOp::Sub, n, 1);
                let s = mb.invoke_local(me, buildlist, &[n1.into()]);
                let rest = mb.touch_get(s);
                let s2 = mb.invoke_local(me, mk_cons, &[n.into(), rest.into()]);
                let v = mb.touch_get(s2);
                mb.reply(v);
            },
        );
    });
    let append = pb.declare(math, "append", 2);
    pb.define(append, |mb| {
        let (a, b) = (mb.arg(0), mb.arg(1));
        let nil = mb.unl(hem_ir::UnOp::IsNil, a);
        mb.if_else(
            nil,
            |mb| mb.reply(b),
            |mb| {
                let me = mb.self_ref();
                let sh = mb.invoke_local(a, c_head, &[]);
                let st = mb.invoke_local(a, c_tail, &[]);
                mb.touch(&[sh, st]);
                let h = mb.get_slot(sh);
                let t = mb.get_slot(st);
                let sr = mb.invoke_local(me, append, &[t.into(), b.into()]);
                let rest = mb.touch_get(sr);
                let sc = mb.invoke_local(me, mk_cons, &[h.into(), rest.into()]);
                let v = mb.touch_get(sc);
                mb.reply(v);
            },
        );
    });
    let nrev = pb.declare(math, "nrev", 1);
    pb.define(nrev, |mb| {
        let l = mb.arg(0);
        let nil = mb.unl(hem_ir::UnOp::IsNil, l);
        mb.if_else(
            nil,
            |mb| mb.reply(hem_ir::Value::Nil),
            |mb| {
                let me = mb.self_ref();
                let sh = mb.invoke_local(l, c_head, &[]);
                let st = mb.invoke_local(l, c_tail, &[]);
                mb.touch(&[sh, st]);
                let h = mb.get_slot(sh);
                let t = mb.get_slot(st);
                let sr = mb.invoke_local(me, nrev, &[t.into()]);
                let r = mb.touch_get(sr);
                let sc = mb.invoke_local(me, mk_cons, &[h.into(), hem_ir::Value::Nil.into()]);
                let cell = mb.touch_get(sc);
                let sa = mb.invoke_local(me, append, &[r.into(), cell.into()]);
                let v = mb.touch_get(sa);
                mb.reply(v);
            },
        );
    });
    let list_sum = pb.declare(math, "list_sum", 1);
    pb.define(list_sum, |mb| {
        let l = mb.arg(0);
        let nil = mb.unl(hem_ir::UnOp::IsNil, l);
        mb.if_else(
            nil,
            |mb| mb.reply(0i64),
            |mb| {
                let me = mb.self_ref();
                let sh = mb.invoke_local(l, c_head, &[]);
                let st = mb.invoke_local(l, c_tail, &[]);
                mb.touch(&[sh, st]);
                let h = mb.get_slot(sh);
                let t = mb.get_slot(st);
                let sr = mb.invoke_local(me, list_sum, &[t.into()]);
                let rest = mb.touch_get(sr);
                let v = mb.binl(BinOp::Add, h, rest);
                mb.reply(v);
            },
        );
    });
    let nrev_run = pb.method(math, "nrev_run", 1, |mb| {
        let n = mb.arg(0);
        let me = mb.self_ref();
        let sb = mb.invoke_local(me, buildlist, &[n.into()]);
        let l = mb.touch_get(sb);
        let sn = mb.invoke_local(me, nrev, &[l.into()]);
        let r = mb.touch_get(sn);
        let ss = mb.invoke_local(me, list_sum, &[r.into()]);
        let v = mb.touch_get(ss);
        mb.reply(v);
    });

    // ---- Ackermann ----
    let ack = pb.declare(math, "ack", 2);
    pb.define(ack, |mb| {
        let (m, n) = (mb.arg(0), mb.arg(1));
        let mz = mb.binl(BinOp::Eq, m, 0);
        mb.if_else(
            mz,
            |mb| {
                let r = mb.binl(BinOp::Add, n, 1);
                mb.reply(r);
            },
            |mb| {
                let me = mb.self_ref();
                let m1 = mb.binl(BinOp::Sub, m, 1);
                let nz = mb.binl(BinOp::Eq, n, 0);
                mb.if_else(
                    nz,
                    |mb| {
                        let s = mb.invoke_local(me, ack, &[m1.into(), 1i64.into()]);
                        let v = mb.touch_get(s);
                        mb.reply(v);
                    },
                    |mb| {
                        let n1 = mb.binl(BinOp::Sub, n, 1);
                        let s1 = mb.invoke_local(me, ack, &[m.into(), n1.into()]);
                        let inner = mb.touch_get(s1);
                        let s2 = mb.invoke_local(me, ack, &[m1.into(), inner.into()]);
                        let v = mb.touch_get(s2);
                        mb.reply(v);
                    },
                );
            },
        );
    });

    CallSuite {
        program: pb.finish(),
        fib,
        tak,
        nqueens,
        qsort_run,
        nrev_run,
        ack,
    }
}

/// Reference nrev checksum: sum of 1..=n (reversal preserves elements).
pub fn nrev_native_sum(n: i64) -> i64 {
    n * (n + 1) / 2
}

/// Reference Ackermann.
pub fn ack_native(m: i64, n: i64) -> i64 {
    if m == 0 {
        n + 1
    } else if n == 0 {
        ack_native(m - 1, 1)
    } else {
        ack_native(m - 1, ack_native(m, n - 1))
    }
}

// ================= native Rust references =================

/// Reference fib.
pub fn fib_native(n: u64) -> u64 {
    if n < 2 {
        n
    } else {
        fib_native(n - 1) + fib_native(n - 2)
    }
}

/// Reference tak.
pub fn tak_native(x: i64, y: i64, z: i64) -> i64 {
    if y < x {
        tak_native(
            tak_native(x - 1, y, z),
            tak_native(y - 1, z, x),
            tak_native(z - 1, x, y),
        )
    } else {
        z
    }
}

/// Reference nqueens solution count.
pub fn nqueens_native(n: u32) -> u64 {
    fn go(ld: u64, cols: u64, rd: u64, all: u64) -> u64 {
        if cols == all {
            return 1;
        }
        let mut poss = !(ld | cols | rd) & all;
        let mut acc = 0;
        while poss != 0 {
            let bit = poss & poss.wrapping_neg();
            poss ^= bit;
            acc += go((ld | bit) << 1 & all, cols | bit, (rd | bit) >> 1, all);
        }
        acc
    }
    go(0, 0, 0, (1u64 << n) - 1)
}

/// The LCG sequence `qsort_run` fills its array with.
pub fn lcg_sequence(n: usize, seed: i64) -> Vec<i64> {
    let mut v = Vec::with_capacity(n);
    let mut x = seed;
    for _ in 0..n {
        x = (x.wrapping_mul(1103515245).wrapping_add(12345)) & 0x7fff_ffff;
        v.push(x);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use hem_analysis::{InterfaceSet, Schema};
    use hem_core::ExecMode;
    use hem_ir::Value;
    use hem_machine::cost::CostModel;
    use hem_machine::NodeId;

    fn rt(mode: ExecMode) -> (hem_core::Runtime, CallSuite, hem_ir::ObjRef) {
        let suite = build();
        let mut rt = crate::make_runtime(
            suite.program.clone(),
            1,
            CostModel::cm5(),
            mode,
            InterfaceSet::Full,
        );
        let o = rt.alloc_object_by_name("Math", NodeId(0));
        (rt, suite, o)
    }

    #[test]
    fn all_methods_are_nonblocking() {
        let (rt, suite, _) = rt(ExecMode::Hybrid);
        for m in [suite.fib, suite.tak, suite.nqueens, suite.qsort_run] {
            assert_eq!(rt.schemas().of(m), Schema::NonBlocking, "{m:?}");
        }
    }

    #[test]
    fn fib_matches_native() {
        let (mut rt, suite, o) = rt(ExecMode::Hybrid);
        for n in [0, 1, 2, 10, 18] {
            let r = rt.call(o, suite.fib, &[Value::Int(n)]).unwrap();
            assert_eq!(r, Some(Value::Int(fib_native(n as u64) as i64)));
        }
    }

    #[test]
    fn tak_matches_native() {
        let (mut rt, suite, o) = rt(ExecMode::Hybrid);
        let r = rt
            .call(
                o,
                suite.tak,
                &[Value::Int(12), Value::Int(8), Value::Int(4)],
            )
            .unwrap();
        assert_eq!(r, Some(Value::Int(tak_native(12, 8, 4))));
    }

    #[test]
    fn nqueens_matches_native() {
        let (mut rt, suite, o) = rt(ExecMode::Hybrid);
        for n in [4i64, 6, 7] {
            let r = rt.call(o, suite.nqueens, &[Value::Int(n)]).unwrap();
            assert_eq!(
                r,
                Some(Value::Int(nqueens_native(n as u32) as i64)),
                "n={n}"
            );
        }
    }

    #[test]
    fn qsort_sorts_and_checksums() {
        let (mut rt, suite, o) = rt(ExecMode::Hybrid);
        let n = 300usize;
        let r = rt
            .call(o, suite.qsort_run, &[Value::Int(n as i64), Value::Int(42)])
            .unwrap();
        let expect: i64 = lcg_sequence(n, 42).iter().sum();
        assert_eq!(r, Some(Value::Int(expect)), "sorted flag/checksum");
    }

    #[test]
    fn nrev_matches_reference() {
        let (mut rt, suite, o) = rt(ExecMode::Hybrid);
        for n in [0i64, 1, 5, 20] {
            let r = rt.call(o, suite.nrev_run, &[Value::Int(n)]).unwrap();
            assert_eq!(r, Some(Value::Int(nrev_native_sum(n))), "n={n}");
        }
    }

    #[test]
    fn ack_matches_native() {
        let (mut rt, suite, o) = rt(ExecMode::Hybrid);
        for (m, n) in [(0i64, 3i64), (1, 4), (2, 3), (3, 3)] {
            let r = rt
                .call(o, suite.ack, &[Value::Int(m), Value::Int(n)])
                .unwrap();
            assert_eq!(r, Some(Value::Int(ack_native(m, n))), "ack({m},{n})");
        }
    }

    #[test]
    fn parallel_only_agrees_with_hybrid() {
        let (mut h, suite, oh) = rt(ExecMode::Hybrid);
        let (mut p, _, op) = rt(ExecMode::ParallelOnly);
        for (m, args) in [
            (suite.fib, vec![Value::Int(12)]),
            (
                suite.tak,
                vec![Value::Int(10), Value::Int(5), Value::Int(2)],
            ),
            (suite.nqueens, vec![Value::Int(6)]),
            (suite.qsort_run, vec![Value::Int(128), Value::Int(7)]),
            (suite.nrev_run, vec![Value::Int(12)]),
            (suite.ack, vec![Value::Int(2), Value::Int(3)]),
        ] {
            let a = h.call(oh, m, &args).unwrap();
            let b = p.call(op, m, &args).unwrap();
            assert_eq!(a, b, "{m:?}");
        }
    }

    #[test]
    fn c_baseline_agrees() {
        let (mut rt, suite, o) = rt(ExecMode::Hybrid);
        let (v, cycles) = rt.call_c_baseline(o, suite.fib, &[Value::Int(18)]).unwrap();
        assert_eq!(v, Some(Value::Int(fib_native(18) as i64)));
        assert!(cycles > 0);
    }
}
