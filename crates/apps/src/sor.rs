//! SOR — successive over-relaxation on a distributed grid (Table 4, Fig. 9).
//!
//! A 5-point stencil over an `n × n` grid of point *objects*, distributed
//! block-cyclically over a `p × p` processor grid. Every iteration has two
//! half-iterations, exactly as in the paper: a *compute* phase in which
//! each interior point reads its four neighbours (method invocations —
//! local or remote depending on the layout) and computes its new value,
//! and an *update* phase in which the point commits it.
//!
//! The hybrid model's win (Fig. 9): points interior to a block have four
//! local neighbours, so their whole compute runs on the stack; only points
//! on the block perimeter suspend waiting for a remote `get` and fall back
//! to a heap context. The block size knob therefore dials the
//! local-to-remote invocation ratio, which is the x-axis of Table 4.

use hem_core::{Runtime, Trap};
use hem_ir::{BinOp, FieldId, LocalityHint, MethodId, ObjRef, Program, ProgramBuilder, Value};
use hem_machine::topology::{BlockCyclic, ProcGrid};
use hem_machine::NodeId;

/// IR program + handles for the SOR kernel.
#[derive(Debug, Clone)]
pub struct SorProgram {
    /// The program.
    pub program: Program,
    /// `Point.get` — inlinable accessor.
    pub get: MethodId,
    /// `Point.compute` — the stencil.
    pub compute: MethodId,
    /// `Point.update` — commit.
    pub update: MethodId,
    /// `Point.val`.
    pub val: FieldId,
    /// `Point.newval`.
    pub newval: FieldId,
    /// `Point.neighbors` (4 refs, up/down/left/right).
    pub neighbors: FieldId,
    /// `Worker.compute_all`.
    pub compute_all: MethodId,
    /// `Worker.update_all`.
    pub update_all: MethodId,
    /// `Worker.points` — this node's interior points.
    pub points: FieldId,
    /// `Main.step_compute`.
    pub step_compute: MethodId,
    /// `Main.step_update`.
    pub step_update: MethodId,
    /// `Main.workers`.
    pub workers: FieldId,
}

/// Build the SOR program.
pub fn build() -> SorProgram {
    let mut pb = ProgramBuilder::new();

    let point = pb.class("Point", false);
    let val = pb.field(point, "val");
    let newval = pb.field(point, "newval");
    let neighbors = pb.array_field(point, "neighbors");

    let get = pb.method(point, "get", 0, |mb| {
        mb.inlinable();
        let v = mb.get_field(val);
        mb.reply(v);
    });

    let compute = pb.method(point, "compute", 0, |mb| {
        // Read the four neighbours as futures, touch them together
        // (paper Fig. 4: one multi-way touch), then average.
        let mut slots = Vec::new();
        for i in 0..4i64 {
            let nb = mb.get_elem(neighbors, i);
            let s = mb.invoke_into(nb, get, &[]);
            slots.push(s);
        }
        mb.touch(&slots);
        let mine = mb.get_field(val);
        let mut sum = mine;
        for s in slots {
            let v = mb.get_slot(s);
            sum = mb.binl(BinOp::Add, sum, v);
        }
        let nv = mb.binl(BinOp::Mul, sum, 0.2f64);
        mb.set_field(newval, nv);
        mb.reply_nil();
    });

    let update = pb.method(point, "update", 0, |mb| {
        let nv = mb.get_field(newval);
        mb.set_field(val, nv);
        mb.reply_nil();
    });

    let worker = pb.class("Worker", false);
    let points = pb.array_field(worker, "points");
    let compute_all = pb.method(worker, "compute_all", 0, |mb| {
        let n = mb.arr_len(points);
        let join = mb.slot();
        mb.join_init(join, n);
        mb.for_range(0i64, n, |mb, k| {
            let p = mb.get_elem(points, k);
            // Owner computes: the point is local by construction.
            mb.invoke(Some(join), p, compute, &[], LocalityHint::AlwaysLocal);
        });
        mb.touch(&[join]);
        mb.reply_nil();
    });
    let update_all = pb.method(worker, "update_all", 0, |mb| {
        let n = mb.arr_len(points);
        let join = mb.slot();
        mb.join_init(join, n);
        mb.for_range(0i64, n, |mb, k| {
            let p = mb.get_elem(points, k);
            mb.invoke(Some(join), p, update, &[], LocalityHint::AlwaysLocal);
        });
        mb.touch(&[join]);
        mb.reply_nil();
    });

    let main = pb.class("Main", false);
    let workers = pb.array_field(main, "workers");
    // Each half-iteration is one acked multicast over the workers.
    let fan = |pb: &mut ProgramBuilder, name: &str, m: MethodId| {
        pb.method(main, name, 0, |mb| {
            let s = mb.multicast_into(workers, m, &[]);
            mb.touch(&[s]);
            mb.reply_nil();
        })
    };
    let step_compute = fan(&mut pb, "step_compute", compute_all);
    let step_update = fan(&mut pb, "step_update", update_all);

    SorProgram {
        program: pb.finish(),
        get,
        compute,
        update,
        val,
        newval,
        neighbors,
        compute_all,
        update_all,
        points,
        step_compute,
        step_update,
        workers,
    }
}

/// SOR experiment parameters.
#[derive(Debug, Clone, Copy)]
pub struct SorParams {
    /// Grid side length.
    pub n: u32,
    /// Block edge of the block-cyclic layout.
    pub block: u32,
    /// Processor grid.
    pub procs: ProcGrid,
}

/// A placed SOR instance.
pub struct SorInstance {
    /// Parameters it was built with.
    pub params: SorParams,
    /// The driver object (on node 0).
    pub main: ObjRef,
    /// Point objects, row-major.
    pub point_refs: Vec<ObjRef>,
    /// Program handles.
    pub ids: SorProgram,
}

/// Initial grid value at `(i, j)` — a deterministic pseudo-pattern shared
/// with the native reference.
pub fn initial_value(i: u32, j: u32) -> f64 {
    ((i.wrapping_mul(31).wrapping_add(j.wrapping_mul(17))) % 101) as f64 / 101.0
}

/// Place the object graph for `params` into `rt` (which must have
/// `params.procs.len()` nodes).
pub fn setup(rt: &mut Runtime, ids: &SorProgram, params: SorParams) -> SorInstance {
    let n = params.n;
    let bc = BlockCyclic {
        procs: params.procs,
        block: params.block,
    };
    assert_eq!(rt.n_nodes() as u32, params.procs.len());

    // Points.
    let mut point_refs = Vec::with_capacity((n * n) as usize);
    for i in 0..n {
        for j in 0..n {
            let owner = bc.owner(i, j);
            let p = rt.alloc_object_by_name("Point", owner);
            rt.set_field(p, ids.val, Value::Float(initial_value(i, j)));
            rt.set_field(p, ids.newval, Value::Float(0.0));
            point_refs.push(p);
        }
    }
    let at = |i: u32, j: u32| point_refs[(i * n + j) as usize];

    // Neighbour wiring (interior points only get a neighbours array; the
    // boundary stays constant and only serves `get`).
    for i in 1..n - 1 {
        for j in 1..n - 1 {
            let p = at(i, j);
            let nbrs = vec![
                Value::Obj(at(i - 1, j)),
                Value::Obj(at(i + 1, j)),
                Value::Obj(at(i, j - 1)),
                Value::Obj(at(i, j + 1)),
            ];
            rt.set_array(p, ids.neighbors, nbrs);
        }
    }

    // Per-node workers holding their interior points.
    let mut per_node: Vec<Vec<Value>> = vec![Vec::new(); rt.n_nodes()];
    for i in 1..n - 1 {
        for j in 1..n - 1 {
            let p = at(i, j);
            per_node[p.node.idx()].push(Value::Obj(p));
        }
    }
    let mut worker_refs = Vec::new();
    for (nid, pts) in per_node.into_iter().enumerate() {
        let w = rt.alloc_object_by_name("Worker", NodeId(nid as u32));
        rt.set_array(w, ids.points, pts);
        worker_refs.push(Value::Obj(w));
    }
    // Fan-out order: remote workers first, the driver's co-located worker
    // last — otherwise the hybrid's speculative *local* execution would
    // run node 0's whole sweep inline before the other nodes are started
    // (standard SPMD driver discipline: post sends before local work).
    worker_refs.rotate_left(1);
    let main = rt.alloc_object_by_name("Main", NodeId(0));
    rt.set_array(main, ids.workers, worker_refs);

    SorInstance {
        params,
        main,
        point_refs,
        ids: ids.clone(),
    }
}

/// Run `iterations` full iterations (compute + update half-iterations,
/// separated by global barriers, as in the paper's algorithm).
pub fn run(rt: &mut Runtime, inst: &SorInstance, iterations: u32) -> Result<(), Trap> {
    for _ in 0..iterations {
        rt.call(inst.main, inst.ids.step_compute, &[])?;
        rt.call(inst.main, inst.ids.step_update, &[])?;
    }
    Ok(())
}

/// Read the current grid values out of the runtime (row-major).
pub fn grid_values(rt: &Runtime, inst: &SorInstance) -> Vec<f64> {
    inst.point_refs
        .iter()
        .map(|p| match rt.get_field(*p, inst.ids.val) {
            Value::Float(f) => f,
            v => panic!("non-float grid value {v:?}"),
        })
        .collect()
}

/// Native reference: identical stencil, identical summation order.
pub fn native(n: u32, iterations: u32) -> Vec<f64> {
    let idx = |i: u32, j: u32| (i * n + j) as usize;
    let mut val: Vec<f64> = (0..n)
        .flat_map(|i| (0..n).map(move |j| initial_value(i, j)))
        .collect();
    let mut newval = vec![0.0; val.len()];
    for _ in 0..iterations {
        for i in 1..n - 1 {
            for j in 1..n - 1 {
                // Same association order as the IR: ((((v+up)+down)+left)+right)*0.2
                let sum = val[idx(i, j)]
                    + val[idx(i - 1, j)]
                    + val[idx(i + 1, j)]
                    + val[idx(i, j - 1)]
                    + val[idx(i, j + 1)];
                newval[idx(i, j)] = sum * 0.2;
            }
        }
        for i in 1..n - 1 {
            for j in 1..n - 1 {
                val[idx(i, j)] = newval[idx(i, j)];
            }
        }
    }
    val
}

#[cfg(test)]
mod tests {
    use super::*;
    use hem_analysis::{InterfaceSet, Schema};
    use hem_core::ExecMode;
    use hem_machine::cost::CostModel;

    fn run_config(
        n: u32,
        block: u32,
        procs: u32,
        iters: u32,
        mode: ExecMode,
    ) -> (Vec<f64>, Runtime) {
        let ids = build();
        let mut rt = crate::make_runtime(
            ids.program.clone(),
            procs,
            CostModel::cm5(),
            mode,
            InterfaceSet::Full,
        );
        let inst = setup(
            &mut rt,
            &ids,
            SorParams {
                n,
                block,
                procs: ProcGrid::square(procs),
            },
        );
        run(&mut rt, &inst, iters).expect("sor run");
        let vals = grid_values(&rt, &inst);
        (vals, rt)
    }

    #[test]
    fn schemas_are_as_expected() {
        let ids = build();
        let rt = crate::make_runtime(
            ids.program.clone(),
            4,
            CostModel::cm5(),
            ExecMode::Hybrid,
            InterfaceSet::Full,
        );
        assert_eq!(rt.schemas().of(ids.get), Schema::NonBlocking);
        assert_eq!(rt.schemas().of(ids.update), Schema::NonBlocking);
        // compute reads possibly-remote neighbours ⇒ may block.
        assert_eq!(rt.schemas().of(ids.compute), Schema::MayBlock);
        assert_eq!(rt.schemas().of(ids.compute_all), Schema::MayBlock);
    }

    #[test]
    fn matches_native_reference_exactly() {
        let (vals, _) = run_config(10, 2, 4, 3, ExecMode::Hybrid);
        let expect = native(10, 3);
        assert_eq!(vals.len(), expect.len());
        for (k, (a, b)) in vals.iter().zip(&expect).enumerate() {
            assert_eq!(a, b, "grid cell {k}");
        }
    }

    #[test]
    fn hybrid_and_parallel_only_agree() {
        let (h, _) = run_config(8, 1, 4, 2, ExecMode::Hybrid);
        let (p, _) = run_config(8, 1, 4, 2, ExecMode::ParallelOnly);
        assert_eq!(h, p);
    }

    #[test]
    fn block_layout_creates_contexts_only_on_perimeter() {
        // Fig. 9: with a pure block layout, interior points compute on the
        // stack; only perimeter points (and the workers/driver) fall back.
        let n = 16u32;
        let procs = 4u32; // 2x2, block 8 = pure block layout
        let (_, rt) = run_config(n, 8, procs, 1, ExecMode::Hybrid);
        let t = rt.stats().totals();
        let interior = (n - 2) as u64 * (n - 2) as u64;
        // Perimeter points of each 8x8 block: those with a neighbour on
        // another node. Contexts ≈ perimeter computes (2 half-iterations
        // don't matter: update is local) + workers + main fan-outs.
        assert!(
            t.ctx_alloc < interior,
            "contexts {} must be far fewer than interior points {}",
            t.ctx_alloc,
            interior
        );
        // And locality should be high.
        assert!(
            t.local_fraction() > 0.7,
            "local fraction {}",
            t.local_fraction()
        );
    }

    #[test]
    fn cyclic_layout_is_mostly_remote() {
        let (_, rt) = run_config(8, 1, 4, 1, ExecMode::Hybrid);
        let t = rt.stats().totals();
        assert!(
            t.local_fraction() < 0.6,
            "cyclic layout should be remote-heavy: {}",
            t.local_fraction()
        );
    }

    #[test]
    fn locality_rises_with_block_size() {
        let mut prev = -1.0f64;
        for block in [1u32, 2, 4] {
            let (_, rt) = run_config(16, block, 16, 1, ExecMode::Hybrid);
            let f = rt.stats().totals().local_fraction();
            assert!(f > prev, "block {block}: {f} should exceed {prev}");
            prev = f;
        }
    }
}
