//! # hem-apps — the paper's evaluation applications
//!
//! Every workload of the SC'95 evaluation, written against the `hem-ir`
//! builder and executed by the `hem-core` hybrid runtime:
//!
//! * [`callintensive`] — the function-call intensive sequential benchmarks
//!   of Table 3 (fib, tak, nqueens, qsort) plus native-Rust references;
//! * [`sor`] — successive over-relaxation on a block-cyclically
//!   distributed grid (Table 4, Fig. 9);
//! * [`md`] — the MD-Force nonbonded force kernel with remote-coordinate
//!   caching and force combining, random vs. orthogonal-recursive-bisection
//!   layouts (Table 5);
//! * [`em3d`] — the EM3D electromagnetic propagation kernel in its three
//!   communication styles, *pull*, *push* and *forward* (Table 6);
//! * [`sync`] — the synchronization structures of Fig. 3 (RPC,
//!   data-parallel, reactive, custom barrier);
//! * [`service`] — an open-system front-end/back-end request mix driven
//!   by seeded arrivals through `Runtime::run_until`, with driver-side
//!   admission control;
//! * [`layout`] — automatic data placement (the paper's stated future
//!   work): a greedy edge-locality graph partitioner plus the ORB
//!   re-export, with an EM3D auto-layout driver.
//!
//! Each module exposes a `build()` that assembles the IR program (with the
//! id handles a harness needs), a `setup()` that places the object graph
//! for a given layout, a `run()` driver, and a native reference
//! implementation for validating results.

#![warn(missing_docs)]

pub mod callintensive;
pub mod em3d;
pub mod layout;
pub mod md;
pub mod service;
pub mod sor;
pub mod sync;

use hem_analysis::InterfaceSet;
use hem_core::{ExecMode, Runtime};
use hem_ir::Program;
use hem_machine::cost::CostModel;

/// Convenience: build a runtime the way every harness does.
///
/// # Panics
/// If the program fails validation (a harness bug, not a runtime
/// condition).
pub fn make_runtime(
    program: Program,
    nodes: u32,
    cost: CostModel,
    mode: ExecMode,
    interfaces: InterfaceSet,
) -> Runtime {
    match Runtime::new(program, nodes, cost, mode, interfaces) {
        Ok(rt) => rt,
        Err(errs) => {
            let msgs: Vec<String> = errs.iter().map(|e| e.to_string()).collect();
            panic!("kernel program failed validation:\n{}", msgs.join("\n"));
        }
    }
}
