//! EM3D — electromagnetic wave propagation on a bipartite graph (Table 6).
//!
//! The data structure is a graph with **E** (electric) and **H** (magnetic)
//! nodes; each node's value is updated by a linear function of the values
//! carried along its in-edges from nodes of the other type. Following the
//! paper, three versions exercise different communication/synchronization
//! structures:
//!
//! * **pull** — a node reads the values directly from its (possibly
//!   remote) in-neighbours: one `get` future per in-edge, one multi-way
//!   touch, compute in place;
//! * **push** — source nodes write their value to every subscriber
//!   (`recv(edge, v)` accumulates `w[edge]·v`), each push acknowledged, and
//!   a commit phase folds the accumulator into the value. More replies,
//!   shorter messages;
//! * **forward** — a source sends a *single* message that is forwarded
//!   through the chain of subscribers (each applies the value and forwards
//!   the caller's continuation to the next); only the final subscriber
//!   replies. Fewer replies, longer (continuation-carrying) messages —
//!   the trade the paper uses to contrast the CM-5 (cheap replies) with
//!   the T3D (expensive replies).
//!
//! Graph placement has a locality knob: each in-neighbour is chosen on the
//! same node with probability `p_local`, matching Table 6's low
//! (random placement ≈ 1/64 local) and high (99:1) locality rows.

use hem_core::{Runtime, Trap};
use hem_ir::{
    BinOp, FieldId, LocalityHint, MethodId, ObjRef, Program, ProgramBuilder, UnOp, Value,
};
use hem_machine::NodeId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Which communication structure a run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Style {
    /// Read remote values directly.
    Pull,
    /// Write values to subscribers, ack each.
    Push,
    /// Forward one message through the subscriber chain.
    Forward,
}

impl std::fmt::Display for Style {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Style::Pull => write!(f, "pull"),
            Style::Push => write!(f, "push"),
            Style::Forward => write!(f, "forward"),
        }
    }
}

/// IR program + handles for EM3D, built for a fixed in-degree `d`
/// (the pull update is unrolled over the in-edges so each neighbour read
/// is a distinct future slot).
#[derive(Debug, Clone)]
pub struct Em3dProgram {
    /// The program.
    pub program: Program,
    /// In-degree the program was built for.
    pub degree: u32,
    /// `GNode.get`.
    pub get: MethodId,
    /// `GNode.pull_update`.
    pub pull_update: MethodId,
    /// `GNode.recv(edge, v)`.
    pub recv: MethodId,
    /// `GNode.push_send`.
    pub push_send: MethodId,
    /// `GNode.commit`.
    pub commit: MethodId,
    /// `GNode.fwd_send`.
    pub fwd_send: MethodId,
    /// `GNode.deliver(v, edge)`.
    pub deliver: MethodId,
    /// Fields of `GNode`.
    pub f_val: FieldId,
    /// Accumulator field.
    pub f_acc: FieldId,
    /// In-edge weights array.
    pub f_weights: FieldId,
    /// In-neighbour refs array.
    pub f_nbrs: FieldId,
    /// Out-edge target refs (subscribers).
    pub f_out_to: FieldId,
    /// This node's edge index at each subscriber.
    pub f_out_idx: FieldId,
    /// First subscriber in this node's forwarding chain (or Nil).
    pub f_chain_head: FieldId,
    /// Edge index at the chain head.
    pub f_chain_head_edge: FieldId,
    /// Per-in-edge: next subscriber in the source's chain (or Nil).
    pub f_chain_next: FieldId,
    /// Per-in-edge: edge index at that next subscriber.
    pub f_chain_next_edge: FieldId,
    /// `Worker` phase drivers: run `m` over the worker's E or H list.
    pub w_pull_e: MethodId,
    /// Pull-update all local H nodes.
    pub w_pull_h: MethodId,
    /// H sources push (updates E).
    pub w_push_h: MethodId,
    /// E sources push (updates H).
    pub w_push_e: MethodId,
    /// Commit all local E nodes.
    pub w_commit_e: MethodId,
    /// Commit all local H nodes.
    pub w_commit_h: MethodId,
    /// H sources forward-send.
    pub w_fwd_h: MethodId,
    /// E sources forward-send.
    pub w_fwd_e: MethodId,
    /// `Worker.e_nodes`.
    pub w_e_nodes: FieldId,
    /// `Worker.h_nodes`.
    pub w_h_nodes: FieldId,
    /// `Main` fan-out methods, one per worker phase (same order as the
    /// worker methods above).
    pub main_phases: MainPhases,
    /// `Main.workers`.
    pub m_workers: FieldId,
}

/// `Main`'s fan-out entry points.
#[derive(Debug, Clone, Copy)]
pub struct MainPhases {
    /// Pull-update all E.
    pub pull_e: MethodId,
    /// Pull-update all H.
    pub pull_h: MethodId,
    /// H push (into E).
    pub push_h: MethodId,
    /// E push (into H).
    pub push_e: MethodId,
    /// Commit E.
    pub commit_e: MethodId,
    /// Commit H.
    pub commit_h: MethodId,
    /// H forward (into E).
    pub fwd_h: MethodId,
    /// E forward (into H).
    pub fwd_e: MethodId,
}

/// Build the EM3D program for in-degree `degree`.
pub fn build(degree: u32) -> Em3dProgram {
    assert!((1..=32).contains(&degree), "degree out of slot range");
    let mut pb = ProgramBuilder::new();

    let g = pb.class("GNode", false);
    let f_val = pb.field(g, "val");
    let f_acc = pb.field(g, "acc");
    let f_weights = pb.array_field(g, "weights");
    let f_nbrs = pb.array_field(g, "nbrs");
    let f_out_to = pb.array_field(g, "out_to");
    let f_out_idx = pb.array_field(g, "out_idx");
    let f_chain_head = pb.field(g, "chain_head");
    let f_chain_head_edge = pb.field(g, "chain_head_edge");
    let f_chain_next = pb.array_field(g, "chain_next");
    let f_chain_next_edge = pb.array_field(g, "chain_next_edge");

    let get = pb.method(g, "get", 0, |mb| {
        mb.inlinable();
        let v = mb.get_field(f_val);
        mb.reply(v);
    });

    // pull: unrolled over the in-edges so every read is its own future.
    let pull_update = pb.method(g, "pull_update", 0, |mb| {
        let mut slots = Vec::new();
        for e in 0..degree as i64 {
            let nb = mb.get_elem(f_nbrs, e);
            let s = mb.invoke_into(nb, get, &[]);
            slots.push(s);
        }
        mb.touch(&slots);
        let mut sum = mb.local();
        mb.mov(sum, 0.0f64);
        for (e, s) in slots.iter().enumerate() {
            let v = mb.get_slot(*s);
            let w = mb.get_elem(f_weights, e as i64);
            let wv = mb.binl(BinOp::Mul, w, v);
            let ns = mb.binl(BinOp::Add, sum, wv);
            sum = ns;
        }
        let cur = mb.get_field(f_val);
        let nv = mb.binl(BinOp::Sub, cur, sum);
        mb.set_field(f_val, nv);
        mb.reply_nil();
    });

    // push: receiver accumulates w[edge]·v.
    let recv = pb.method(g, "recv", 2, |mb| {
        let (e, v) = (mb.arg(0), mb.arg(1));
        let w = mb.get_elem(f_weights, e);
        let wv = mb.binl(BinOp::Mul, w, v);
        let a = mb.get_field(f_acc);
        let na = mb.binl(BinOp::Add, a, wv);
        mb.set_field(f_acc, na);
        mb.reply_nil();
    });
    let push_send = pb.method(g, "push_send", 0, |mb| {
        let n = mb.arr_len(f_out_to);
        let join = mb.slot();
        mb.join_init(join, n);
        let v = mb.get_field(f_val);
        mb.for_range(0i64, n, |mb, k| {
            let d = mb.get_elem(f_out_to, k);
            let e = mb.get_elem(f_out_idx, k);
            mb.invoke(
                Some(join),
                d,
                recv,
                &[e.into(), v.into()],
                LocalityHint::Unknown,
            );
        });
        mb.touch(&[join]);
        mb.reply_nil();
    });
    let commit = pb.method(g, "commit", 0, |mb| {
        let a = mb.get_field(f_acc);
        let cur = mb.get_field(f_val);
        let nv = mb.binl(BinOp::Sub, cur, a);
        mb.set_field(f_val, nv);
        mb.set_field(f_acc, 0.0f64);
        mb.reply_nil();
    });

    // forward: one message threads the subscriber chain; the last
    // subscriber replies straight to the source (continuation forwarding).
    let deliver = pb.declare(g, "deliver", 2); // (v, edge)
    pb.define(deliver, |mb| {
        let (v, e) = (mb.arg(0), mb.arg(1));
        let w = mb.get_elem(f_weights, e);
        let wv = mb.binl(BinOp::Mul, w, v);
        let a = mb.get_field(f_acc);
        let na = mb.binl(BinOp::Add, a, wv);
        mb.set_field(f_acc, na);
        let next = mb.get_elem(f_chain_next, e);
        let done = mb.unl(UnOp::IsNil, next);
        mb.if_else(
            done,
            |mb| mb.reply_nil(),
            |mb| {
                let ne = mb.get_elem(f_chain_next_edge, e);
                mb.forward(next, deliver, &[v.into(), ne.into()], LocalityHint::Unknown);
            },
        );
    });
    let fwd_send = pb.method(g, "fwd_send", 0, |mb| {
        let head = mb.get_field(f_chain_head);
        let none = mb.unl(UnOp::IsNil, head);
        mb.if_else(
            none,
            |mb| mb.reply_nil(),
            |mb| {
                let v = mb.get_field(f_val);
                let e = mb.get_field(f_chain_head_edge);
                let s = mb.slot();
                mb.invoke(
                    Some(s),
                    head,
                    deliver,
                    &[v.into(), e.into()],
                    LocalityHint::Unknown,
                );
                mb.touch(&[s]);
                mb.reply_nil();
            },
        );
    });

    // Workers: loop a method over the local E or H list.
    let worker = pb.class("Worker", false);
    let w_e_nodes = pb.array_field(worker, "e_nodes");
    let w_h_nodes = pb.array_field(worker, "h_nodes");
    let sweep = |pb: &mut ProgramBuilder, name: &str, list: FieldId, m: MethodId| {
        pb.method(worker, name, 0, |mb| {
            let n = mb.arr_len(list);
            let join = mb.slot();
            mb.join_init(join, n);
            mb.for_range(0i64, n, |mb, k| {
                let p = mb.get_elem(list, k);
                mb.invoke(Some(join), p, m, &[], LocalityHint::AlwaysLocal);
            });
            mb.touch(&[join]);
            mb.reply_nil();
        })
    };
    let w_pull_e = sweep(&mut pb, "pull_e", w_e_nodes, pull_update);
    let w_pull_h = sweep(&mut pb, "pull_h", w_h_nodes, pull_update);
    let w_push_h = sweep(&mut pb, "push_h", w_h_nodes, push_send);
    let w_push_e = sweep(&mut pb, "push_e", w_e_nodes, push_send);
    let w_commit_e = sweep(&mut pb, "commit_e", w_e_nodes, commit);
    let w_commit_h = sweep(&mut pb, "commit_h", w_h_nodes, commit);
    let w_fwd_h = sweep(&mut pb, "fwd_h", w_h_nodes, fwd_send);
    let w_fwd_e = sweep(&mut pb, "fwd_e", w_e_nodes, fwd_send);

    // Main fan-out: one acked multicast over the workers per phase.
    let main = pb.class("Main", false);
    let m_workers = pb.array_field(main, "workers");
    let fan = |pb: &mut ProgramBuilder, name: &str, m: MethodId| {
        pb.method(main, name, 0, |mb| {
            let s = mb.multicast_into(m_workers, m, &[]);
            mb.touch(&[s]);
            mb.reply_nil();
        })
    };
    let main_phases = MainPhases {
        pull_e: fan(&mut pb, "m_pull_e", w_pull_e),
        pull_h: fan(&mut pb, "m_pull_h", w_pull_h),
        push_h: fan(&mut pb, "m_push_h", w_push_h),
        push_e: fan(&mut pb, "m_push_e", w_push_e),
        commit_e: fan(&mut pb, "m_commit_e", w_commit_e),
        commit_h: fan(&mut pb, "m_commit_h", w_commit_h),
        fwd_h: fan(&mut pb, "m_fwd_h", w_fwd_h),
        fwd_e: fan(&mut pb, "m_fwd_e", w_fwd_e),
    };

    Em3dProgram {
        program: pb.finish(),
        degree,
        get,
        pull_update,
        recv,
        push_send,
        commit,
        fwd_send,
        deliver,
        f_val,
        f_acc,
        f_weights,
        f_nbrs,
        f_out_to,
        f_out_idx,
        f_chain_head,
        f_chain_head_edge,
        f_chain_next,
        f_chain_next_edge,
        w_pull_e,
        w_pull_h,
        w_push_h,
        w_push_e,
        w_commit_e,
        w_commit_h,
        w_fwd_h,
        w_fwd_e,
        w_e_nodes,
        w_h_nodes,
        main_phases,
        m_workers,
    }
}

/// The synthetic EM3D graph, shared between the IR setup and the native
/// reference.
#[derive(Debug, Clone)]
pub struct Em3dGraph {
    /// Nodes per kind.
    pub n_each: u32,
    /// In-degree.
    pub degree: u32,
    /// E-node placements.
    pub e_owner: Vec<NodeId>,
    /// H-node placements.
    pub h_owner: Vec<NodeId>,
    /// E in-neighbours (indices into H), `n_each × degree`.
    pub e_in: Vec<Vec<u32>>,
    /// H in-neighbours (indices into E).
    pub h_in: Vec<Vec<u32>>,
    /// E in-edge weights.
    pub e_w: Vec<Vec<f64>>,
    /// H in-edge weights.
    pub h_w: Vec<Vec<f64>>,
    /// Initial E values.
    pub e0: Vec<f64>,
    /// Initial H values.
    pub h0: Vec<f64>,
}

/// Generate a graph: `n_each` nodes of each kind on `nodes` machine nodes,
/// each in-neighbour co-located with probability `p_local`.
pub fn generate(n_each: u32, degree: u32, nodes: u32, p_local: f64, seed: u64) -> Em3dGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let owner = |rng: &mut SmallRng| NodeId(rng.gen_range(0..nodes));
    let e_owner: Vec<NodeId> = (0..n_each).map(|_| owner(&mut rng)).collect();
    let h_owner: Vec<NodeId> = (0..n_each).map(|_| owner(&mut rng)).collect();

    // Index of other-kind nodes per machine node, for local picks.
    let mut h_by_node: Vec<Vec<u32>> = vec![Vec::new(); nodes as usize];
    for (i, o) in h_owner.iter().enumerate() {
        h_by_node[o.idx()].push(i as u32);
    }
    let mut e_by_node: Vec<Vec<u32>> = vec![Vec::new(); nodes as usize];
    for (i, o) in e_owner.iter().enumerate() {
        e_by_node[o.idx()].push(i as u32);
    }

    let pick = |rng: &mut SmallRng, my: NodeId, pool: &[Vec<u32>], total: u32| -> u32 {
        let local = &pool[my.idx()];
        if !local.is_empty() && rng.gen_bool(p_local) {
            local[rng.gen_range(0..local.len())]
        } else {
            rng.gen_range(0..total)
        }
    };

    let mut e_in = Vec::with_capacity(n_each as usize);
    let mut h_in = Vec::with_capacity(n_each as usize);
    let mut e_w = Vec::with_capacity(n_each as usize);
    let mut h_w = Vec::with_capacity(n_each as usize);
    for i in 0..n_each {
        let mut ins = Vec::with_capacity(degree as usize);
        let mut ws = Vec::with_capacity(degree as usize);
        for _ in 0..degree {
            ins.push(pick(&mut rng, e_owner[i as usize], &h_by_node, n_each));
            ws.push(rng.gen_range(-0.01..0.01));
        }
        e_in.push(ins);
        e_w.push(ws);
        let mut ins = Vec::with_capacity(degree as usize);
        let mut ws = Vec::with_capacity(degree as usize);
        for _ in 0..degree {
            ins.push(pick(&mut rng, h_owner[i as usize], &e_by_node, n_each));
            ws.push(rng.gen_range(-0.01..0.01));
        }
        h_in.push(ins);
        h_w.push(ws);
    }
    let e0: Vec<f64> = (0..n_each).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let h0: Vec<f64> = (0..n_each).map(|_| rng.gen_range(-1.0..1.0)).collect();
    Em3dGraph {
        n_each,
        degree,
        e_owner,
        h_owner,
        e_in,
        h_in,
        e_w,
        h_w,
        e0,
        h0,
    }
}

/// A placed EM3D instance.
pub struct Em3dInstance {
    /// Program handles.
    pub ids: Em3dProgram,
    /// Driver object.
    pub main: ObjRef,
    /// E-node objects.
    pub e_refs: Vec<ObjRef>,
    /// H-node objects.
    pub h_refs: Vec<ObjRef>,
}

/// Place a generated graph into the runtime.
pub fn setup(rt: &mut Runtime, ids: &Em3dProgram, g: &Em3dGraph) -> Em3dInstance {
    assert_eq!(ids.degree, g.degree);
    let e_refs: Vec<ObjRef> = g
        .e_owner
        .iter()
        .map(|o| rt.alloc_object_by_name("GNode", *o))
        .collect();
    let h_refs: Vec<ObjRef> = g
        .h_owner
        .iter()
        .map(|o| rt.alloc_object_by_name("GNode", *o))
        .collect();

    // Populate both kinds: (refs of this kind, in-lists, weights, initial
    // values, refs of the other kind).
    let fill = |rt: &mut Runtime,
                refs: &[ObjRef],
                ins: &[Vec<u32>],
                ws: &[Vec<f64>],
                v0: &[f64],
                other: &[ObjRef]| {
        for (i, r) in refs.iter().enumerate() {
            rt.set_field(*r, ids.f_val, Value::Float(v0[i]));
            rt.set_field(*r, ids.f_acc, Value::Float(0.0));
            rt.set_array(
                *r,
                ids.f_nbrs,
                ins[i]
                    .iter()
                    .map(|k| Value::Obj(other[*k as usize]))
                    .collect(),
            );
            rt.set_array(
                *r,
                ids.f_weights,
                ws[i].iter().map(|w| Value::Float(*w)).collect(),
            );
            rt.set_array(*r, ids.f_chain_next, vec![Value::Nil; ids.degree as usize]);
            rt.set_array(
                *r,
                ids.f_chain_next_edge,
                vec![Value::Int(0); ids.degree as usize],
            );
            rt.set_field(*r, ids.f_chain_head, Value::Nil);
            rt.set_field(*r, ids.f_chain_head_edge, Value::Int(0));
        }
    };
    fill(rt, &e_refs, &g.e_in, &g.e_w, &g.e0, &h_refs);
    fill(rt, &h_refs, &g.h_in, &g.h_w, &g.h0, &e_refs);

    // Out-edges and forwarding chains: for each source, its subscribers
    // are the (dest, edge) pairs that list it as an in-neighbour.
    let wire_out =
        |rt: &mut Runtime, srcs: &[ObjRef], dest_refs: &[ObjRef], dest_in: &[Vec<u32>]| {
            let mut subs: Vec<Vec<(u32, u32)>> = vec![Vec::new(); srcs.len()];
            for (d, ins) in dest_in.iter().enumerate() {
                for (e, s) in ins.iter().enumerate() {
                    subs[*s as usize].push((d as u32, e as u32));
                }
            }
            for (s, list) in subs.iter().enumerate() {
                let sref = srcs[s];
                rt.set_array(
                    sref,
                    ids.f_out_to,
                    list.iter()
                        .map(|(d, _)| Value::Obj(dest_refs[*d as usize]))
                        .collect(),
                );
                rt.set_array(
                    sref,
                    ids.f_out_idx,
                    list.iter().map(|(_, e)| Value::Int(*e as i64)).collect(),
                );
                // Chain: d1 -> d2 -> ... -> dk.
                if let Some((d1, e1)) = list.first() {
                    rt.set_field(sref, ids.f_chain_head, Value::Obj(dest_refs[*d1 as usize]));
                    rt.set_field(sref, ids.f_chain_head_edge, Value::Int(*e1 as i64));
                    for w in list.windows(2) {
                        let (da, ea) = w[0];
                        let (db, eb) = w[1];
                        let dref = dest_refs[da as usize];
                        let mut next = rt.get_array(dref, ids.f_chain_next).to_vec();
                        let mut nexte = rt.get_array(dref, ids.f_chain_next_edge).to_vec();
                        next[ea as usize] = Value::Obj(dest_refs[db as usize]);
                        nexte[ea as usize] = Value::Int(eb as i64);
                        rt.set_array(dref, ids.f_chain_next, next);
                        rt.set_array(dref, ids.f_chain_next_edge, nexte);
                    }
                }
            }
        };
    // H sources feed E nodes (E's in-lists), E sources feed H nodes.
    wire_out(rt, &h_refs, &e_refs, &g.e_in);
    wire_out(rt, &e_refs, &h_refs, &g.h_in);

    // Workers + main.
    let mut per_node_e: Vec<Vec<Value>> = vec![Vec::new(); rt.n_nodes()];
    let mut per_node_h: Vec<Vec<Value>> = vec![Vec::new(); rt.n_nodes()];
    for r in &e_refs {
        per_node_e[r.node.idx()].push(Value::Obj(*r));
    }
    for r in &h_refs {
        per_node_h[r.node.idx()].push(Value::Obj(*r));
    }
    let mut workers = Vec::new();
    for n in 0..rt.n_nodes() {
        let w = rt.alloc_object_by_name("Worker", NodeId(n as u32));
        rt.set_array(w, ids.w_e_nodes, std::mem::take(&mut per_node_e[n]));
        rt.set_array(w, ids.w_h_nodes, std::mem::take(&mut per_node_h[n]));
        workers.push(Value::Obj(w));
    }
    // Remote workers first, the driver's co-located worker last (see sor).
    workers.rotate_left(1);
    let main = rt.alloc_object_by_name("Main", NodeId(0));
    rt.set_array(main, ids.m_workers, workers);

    Em3dInstance {
        ids: ids.clone(),
        main,
        e_refs,
        h_refs,
    }
}

/// Run `iters` timesteps in the given style. Each timestep updates E from
/// H, then H from E, with global barriers between phases.
pub fn run(rt: &mut Runtime, inst: &Em3dInstance, style: Style, iters: u32) -> Result<(), Trap> {
    let p = inst.ids.main_phases;
    for _ in 0..iters {
        match style {
            Style::Pull => {
                rt.call(inst.main, p.pull_e, &[])?;
                rt.call(inst.main, p.pull_h, &[])?;
            }
            Style::Push => {
                rt.call(inst.main, p.push_h, &[])?;
                rt.call(inst.main, p.commit_e, &[])?;
                rt.call(inst.main, p.push_e, &[])?;
                rt.call(inst.main, p.commit_h, &[])?;
            }
            Style::Forward => {
                rt.call(inst.main, p.fwd_h, &[])?;
                rt.call(inst.main, p.commit_e, &[])?;
                rt.call(inst.main, p.fwd_e, &[])?;
                rt.call(inst.main, p.commit_h, &[])?;
            }
        }
    }
    Ok(())
}

/// Extract current (E, H) values.
pub fn values(rt: &Runtime, inst: &Em3dInstance) -> (Vec<f64>, Vec<f64>) {
    let f = |r: &ObjRef| match rt.get_field(*r, inst.ids.f_val) {
        Value::Float(x) => x,
        v => panic!("non-float value {v:?}"),
    };
    (
        inst.e_refs.iter().map(f).collect(),
        inst.h_refs.iter().map(f).collect(),
    )
}

/// Native reference (in-edge summation order — matches `pull` exactly;
/// push/forward accumulate in arrival order and match to tolerance).
pub fn native(g: &Em3dGraph, iters: u32) -> (Vec<f64>, Vec<f64>) {
    let mut e = g.e0.clone();
    let mut h = g.h0.clone();
    for _ in 0..iters {
        for (i, ev) in e.iter_mut().enumerate() {
            let mut sum = 0.0;
            for (k, s) in g.e_in[i].iter().enumerate() {
                sum += g.e_w[i][k] * h[*s as usize];
            }
            *ev -= sum;
        }
        for (i, hv) in h.iter_mut().enumerate() {
            let mut sum = 0.0;
            for (k, s) in g.h_in[i].iter().enumerate() {
                sum += g.h_w[i][k] * e[*s as usize];
            }
            *hv -= sum;
        }
    }
    (e, h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hem_analysis::{InterfaceSet, Schema};
    use hem_core::ExecMode;
    use hem_machine::cost::CostModel;

    fn close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (k, (x, y)) in a.iter().zip(b).enumerate() {
            let d = (x - y).abs();
            let m = x.abs().max(y.abs()).max(1.0);
            assert!(d / m < tol, "element {k}: {x} vs {y}");
        }
    }

    fn run_style(
        style: Style,
        mode: ExecMode,
        p_local: f64,
    ) -> ((Vec<f64>, Vec<f64>), Runtime, Em3dGraph) {
        let ids = build(4);
        let g = generate(24, 4, 4, p_local, 99);
        let mut rt = crate::make_runtime(
            ids.program.clone(),
            4,
            CostModel::cm5(),
            mode,
            InterfaceSet::Full,
        );
        rt.enable_trace();
        let inst = setup(&mut rt, &ids, &g);
        run(&mut rt, &inst, style, 2).expect("em3d run");
        let v = values(&rt, &inst);
        (v, rt, g)
    }

    #[test]
    fn schemas() {
        let ids = build(4);
        let rt = crate::make_runtime(
            ids.program.clone(),
            2,
            CostModel::cm5(),
            ExecMode::Hybrid,
            InterfaceSet::Full,
        );
        assert_eq!(rt.schemas().of(ids.get), Schema::NonBlocking);
        assert_eq!(rt.schemas().of(ids.recv), Schema::NonBlocking);
        assert_eq!(rt.schemas().of(ids.commit), Schema::NonBlocking);
        assert_eq!(rt.schemas().of(ids.pull_update), Schema::MayBlock);
        assert_eq!(
            rt.schemas().of(ids.deliver),
            Schema::ContPassing,
            "deliver forwards"
        );
    }

    #[test]
    fn pull_matches_native_exactly() {
        let ((e, h), _, g) = run_style(Style::Pull, ExecMode::Hybrid, 0.5);
        let (en, hn) = native(&g, 2);
        assert_eq!(e, en);
        assert_eq!(h, hn);
    }

    #[test]
    fn push_matches_native() {
        let ((e, h), _, g) = run_style(Style::Push, ExecMode::Hybrid, 0.5);
        let (en, hn) = native(&g, 2);
        close(&e, &en, 1e-9);
        close(&h, &hn, 1e-9);
    }

    #[test]
    fn forward_matches_native() {
        let ((e, h), _, g) = run_style(Style::Forward, ExecMode::Hybrid, 0.5);
        let (en, hn) = native(&g, 2);
        close(&e, &en, 1e-9);
        close(&h, &hn, 1e-9);
    }

    #[test]
    fn all_styles_agree_across_modes() {
        for style in [Style::Pull, Style::Push, Style::Forward] {
            let ((eh, hh), _, _) = run_style(style, ExecMode::Hybrid, 0.3);
            let ((ep, hp), _, _) = run_style(style, ExecMode::ParallelOnly, 0.3);
            close(&eh, &ep, 1e-12);
            close(&hh, &hp, 1e-12);
        }
    }

    #[test]
    fn forward_sends_fewer_replies_than_push() {
        let (_, rt_push, _) = run_style(Style::Push, ExecMode::Hybrid, 0.0);
        let (_, rt_fwd, _) = run_style(Style::Forward, ExecMode::Hybrid, 0.0);
        let pr = rt_push.stats().totals().replies_sent;
        let fr = rt_fwd.stats().totals().replies_sent;
        assert!(
            fr < pr,
            "forward replies {fr} should undercut push replies {pr}"
        );
    }

    #[test]
    fn high_locality_reduces_messages() {
        // The phase fan-outs are multicasts whose leg count depends only
        // on the worker count, not on graph placement; locality shows up
        // in the *request* traffic (remote `get`s), so re-derive that
        // count from the trace by cause rather than from raw `msgs_sent`.
        use hem_core::trace::{MsgCause, TraceEvent};
        let requests = |rt: &mut Runtime| {
            rt.take_trace()
                .iter()
                .filter(|r| {
                    matches!(
                        r.event,
                        TraceEvent::MsgSent {
                            cause: MsgCause::Request,
                            ..
                        }
                    )
                })
                .count()
        };
        let (_, mut lo, _) = run_style(Style::Pull, ExecMode::Hybrid, 0.0);
        let (_, mut hi, _) = run_style(Style::Pull, ExecMode::Hybrid, 0.95);
        let ml = requests(&mut lo);
        let mh = requests(&mut hi);
        assert!(mh < ml / 2, "local picks {mh} vs random {ml}");
        // And the collective legs really are placement-independent.
        let cl = lo.stats().totals().coll_legs_sent;
        let ch = hi.stats().totals().coll_legs_sent;
        assert_eq!(cl, ch, "fan-out legs must not depend on locality");
    }
}
