//! Optimistic (Time-Warp) executor determinism.
//!
//! `SchedImpl::Speculative` runs windows *past* the conservative
//! lookahead bound, detecting cross-shard stragglers after the fact and
//! rolling back to window-edge checkpoints (see `hem_core::timewarp`).
//! Its contract is the sharded executor's, strengthened: speculation —
//! including every rollback, anti-message, and re-drawn window — is
//! *invisible*. The run is the same pure function of (program,
//! placement, cost model, mode, fault plan) at every thread count, even
//! in the zero-lookahead regime where the conservative executor
//! degrades to serial coordinator steps.
//!
//! The matrix pins that down against the single-threaded event index on
//! all four app kernels × three pinned seeds × threads {2, 4}, with and
//! without a fault plan:
//!
//! * bit-identical makespans, per-node clocks, per-node counters, and
//!   network/fault statistics (fault fates survive rollback re-sends:
//!   per-sender wire sequence counters rewind with the node snapshots);
//! * bit-identical full trace sequences (first divergence reported);
//! * bit-identical observer streams — the rendered rollup *report text*
//!   matches byte for byte;
//! * degenerate cases: P=1, threads > P, threads ∈ {0, 1}, and a
//!   zero-latency cost model — the case the optimistic executor exists
//!   for, asserted to actually speculate rather than fall back.
//!
//! Seeds come from `HYBRID_TEST_SEED` when set (the CI
//! timewarp-determinism job pins three), else a built-in trio.

use hem::analysis::InterfaceSet;
use hem::apps::{em3d, md, sor, sync};
use hem::core::trace::TraceRecord;
use hem::core::{ExecMode, Runtime, SchedImpl, SpecStats};
use hem::machine::cost::CostModel;
use hem::machine::fault::FaultPlan;
use hem::machine::stats::MachineStats;
use hem::machine::topology::ProcGrid;
use hem::obs::{Report, Rollup};

/// Everything observable about one run, including the rendered rollup
/// report fed by an *online* observer (not the trace buffer), plus the
/// speculation diagnostics (compared against nothing — they are
/// thread-count-dependent by design — but asserted non-trivial where
/// the test's point is that speculation happened).
struct Outcome {
    makespan: u64,
    stats: MachineStats,
    trace: Vec<TraceRecord>,
    report: String,
    spec: SpecStats,
}

/// Run `kernel` at P=16 with tracing and a rollup observer on; `seed`
/// drives graph/layout generation (MD, EM3D) and the fault plan. `cost`
/// overrides the kernel's native cost model when set (the zero-lookahead
/// cases use `CostModel::unit()`).
fn run_kernel(
    kernel: &str,
    seed: u64,
    sched: SchedImpl,
    plan: Option<&FaultPlan>,
    cost: Option<CostModel>,
) -> Outcome {
    let arm = |rt: &mut Runtime| {
        rt.sched_impl = sched;
        rt.enable_trace();
        rt.attach_observer(Box::new(Rollup::new()));
        if let Some(p) = plan {
            rt.set_fault_plan(p.clone());
        }
    };
    let pick = |native: CostModel| cost.clone().unwrap_or(native);
    let mut rt = match kernel {
        "sor" => {
            let ids = sor::build();
            let mut rt = Runtime::new(
                ids.program.clone(),
                16,
                pick(CostModel::cm5()),
                ExecMode::Hybrid,
                InterfaceSet::Full,
            )
            .unwrap();
            arm(&mut rt);
            let inst = sor::setup(
                &mut rt,
                &ids,
                sor::SorParams {
                    n: 20,
                    block: 2,
                    procs: ProcGrid::square(16),
                },
            );
            sor::run(&mut rt, &inst, 2).unwrap();
            rt
        }
        "em3d" => {
            let ids = em3d::build(4);
            let g = em3d::generate(40, 4, 16, 0.4, seed);
            let mut rt = Runtime::new(
                ids.program.clone(),
                16,
                pick(CostModel::t3d()),
                ExecMode::Hybrid,
                InterfaceSet::Full,
            )
            .unwrap();
            arm(&mut rt);
            let inst = em3d::setup(&mut rt, &ids, &g);
            em3d::run(&mut rt, &inst, em3d::Style::Pull, 2).unwrap();
            rt
        }
        "md" => {
            let ids = md::build();
            let sys = md::generate(120, 1.2, 16, md::Layout::Spatial, seed);
            let mut rt = Runtime::new(
                ids.program.clone(),
                16,
                pick(CostModel::cm5()),
                ExecMode::Hybrid,
                InterfaceSet::Full,
            )
            .unwrap();
            arm(&mut rt);
            let inst = md::setup(&mut rt, &ids, &sys);
            md::run_iteration(&mut rt, &inst).unwrap();
            rt
        }
        "sync" => {
            let ids = sync::build();
            let mut rt = Runtime::new(
                ids.program.clone(),
                16,
                pick(CostModel::cm5()),
                ExecMode::Hybrid,
                InterfaceSet::Full,
            )
            .unwrap();
            arm(&mut rt);
            let inst = sync::setup(&mut rt, &ids, 16);
            rt.call(inst.drivers[0], ids.fan, &[]).unwrap();
            rt.call(inst.drivers[0], ids.scatter, &[]).unwrap();
            rt.call(inst.drivers[1], ids.sum_all, &[]).unwrap();
            rt.call(inst.drivers[2], ids.quiesce, &[]).unwrap();
            sync::run_rendezvous(&mut rt, &inst).unwrap();
            rt
        }
        other => panic!("unknown kernel {other}"),
    };
    let stats = rt.stats();
    let any: Box<dyn std::any::Any> = rt.take_observer().expect("rollup attached");
    let rollup = any.downcast::<Rollup>().expect("a Rollup");
    let report = Report::new(kernel, &rollup, &stats, rt.program(), rt.schemas()).text();
    Outcome {
        makespan: rt.makespan(),
        stats,
        trace: rt.take_trace(),
        report,
        spec: rt.spec_stats(),
    }
}

const KERNELS: [&str; 4] = ["sor", "em3d", "md", "sync"];

/// Thread counts the matrix diffs against the single-threaded baseline.
const THREADS: [usize; 2] = [2, 4];

/// Seeds: `HYBRID_TEST_SEED` (one seed) when set, else a pinned trio,
/// matching the fault-matrix harness.
fn seeds() -> Vec<u64> {
    match std::env::var("HYBRID_TEST_SEED") {
        Ok(s) => vec![s
            .trim()
            .parse()
            .expect("HYBRID_TEST_SEED must be an unsigned integer")],
        Err(_) => vec![1, 0xDEAD_BEEF, 3_141_592_653],
    }
}

fn assert_bit_identical(label: &str, base: &Outcome, spec: &Outcome) {
    assert_eq!(base.makespan, spec.makespan, "{label}: makespan");
    assert_eq!(
        base.stats.node_time, spec.stats.node_time,
        "{label}: per-node clocks"
    );
    assert_eq!(
        base.stats.per_node, spec.stats.per_node,
        "{label}: per-node counters"
    );
    assert_eq!(base.stats.net, spec.stats.net, "{label}: net/fault stats");
    if let Some(i) =
        (0..base.trace.len().min(spec.trace.len())).find(|&i| base.trace[i] != spec.trace[i])
    {
        panic!(
            "{label}: traces diverge at record {i}:\n  threads=1:   {:?}\n  speculative: {:?}",
            base.trace[i], spec.trace[i]
        );
    }
    assert_eq!(base.trace.len(), spec.trace.len(), "{label}: trace length");
    assert_eq!(
        base.stats.sched.events_dispatched, spec.stats.sched.events_dispatched,
        "{label}: events dispatched"
    );
    assert_eq!(base.report, spec.report, "{label}: rollup report text");
}

/// Fault-free matrix: every kernel × every pinned seed, speculative at 2
/// and 4 threads vs the single-threaded event index.
#[test]
fn speculative_matches_event_index_on_all_kernels() {
    for kernel in KERNELS {
        for seed in seeds() {
            let base = run_kernel(kernel, seed, SchedImpl::EventIndex, None, None);
            for threads in THREADS {
                let sp = run_kernel(kernel, seed, SchedImpl::Speculative { threads }, None, None);
                assert_bit_identical(&format!("{kernel}/seed{seed}/threads{threads}"), &base, &sp);
            }
        }
    }
}

/// Faulty matrix: the same diff with a seeded fault plan installed
/// (loss, duplication, jitter; reliable transport engaged). This is
/// where rollback correctness earns its keep: a rolled-back window's
/// re-sent packets must re-draw *identical* fault fates, which holds
/// only because the per-sender wire sequence counters rewind with the
/// node snapshots.
#[test]
fn speculative_matches_event_index_under_faults() {
    for kernel in KERNELS {
        for seed in seeds() {
            let mut plan = FaultPlan::seeded(seed);
            plan.drop_permille = 20;
            plan.dup_permille = 20;
            plan.jitter_max = 80;
            let base = run_kernel(kernel, seed, SchedImpl::EventIndex, Some(&plan), None);
            for threads in THREADS {
                let sp = run_kernel(
                    kernel,
                    seed,
                    SchedImpl::Speculative { threads },
                    Some(&plan),
                    None,
                );
                assert_bit_identical(
                    &format!("{kernel}/seed{seed}/faulty/threads{threads}"),
                    &base,
                    &sp,
                );
            }
        }
    }
}

/// The zero-lookahead regime — the case this executor exists for. Under
/// `CostModel::unit()` the minimum wire latency is zero, so the
/// conservative sharded executor degrades to serial coordinator steps;
/// the speculative executor must keep windowing (asserted via its
/// diagnostics) and still reproduce the event index bit for bit.
#[test]
fn speculative_wins_the_zero_lookahead_regime_bit_identically() {
    let unit = Some(CostModel::unit());
    for kernel in ["sor", "sync"] {
        let base = run_kernel(kernel, 1, SchedImpl::EventIndex, None, unit.clone());
        // The conservative executor serializes here: every event becomes
        // a coordinator serial step, so it must still match…
        let sh = run_kernel(
            kernel,
            1,
            SchedImpl::Sharded { threads: 4 },
            None,
            unit.clone(),
        );
        assert_bit_identical(&format!("{kernel}/unit/sharded4"), &base, &sh);
        // …while the speculative executor genuinely windows.
        for threads in THREADS {
            let sp = run_kernel(
                kernel,
                1,
                SchedImpl::Speculative { threads },
                None,
                unit.clone(),
            );
            assert_bit_identical(&format!("{kernel}/unit/threads{threads}"), &base, &sp);
            assert!(
                sp.spec.windows > 0,
                "{kernel}/unit/threads{threads}: zero lookahead must speculate, not serialize \
                 (diagnostics: {:?})",
                sp.spec
            );
        }
    }
}

/// Degenerate thread counts fall back to the event index outright
/// (threads ∈ {0, 1}, with zeroed speculation diagnostics), and thread
/// counts above the node count clamp and still reproduce the baseline.
#[test]
fn degenerate_thread_counts_match() {
    let base = run_kernel("sor", 1, SchedImpl::EventIndex, None, None);
    for threads in [0usize, 1, 16, 64] {
        let sp = run_kernel("sor", 1, SchedImpl::Speculative { threads }, None, None);
        assert_bit_identical(&format!("sor/degenerate/threads{threads}"), &base, &sp);
        if threads <= 1 {
            assert_eq!(
                sp.spec,
                SpecStats::default(),
                "threads={threads}: fallback must not speculate"
            );
        }
    }
}

/// P=1: a single-node machine leaves nothing to shard — every thread
/// count clamps to one worker and falls back to the event index.
#[test]
fn single_node_machine_matches() {
    let run = |sched: SchedImpl| {
        let ids = sync::build();
        let mut rt = Runtime::new(
            ids.program.clone(),
            1,
            CostModel::cm5(),
            ExecMode::Hybrid,
            InterfaceSet::Full,
        )
        .unwrap();
        rt.sched_impl = sched;
        rt.enable_trace();
        let inst = sync::setup(&mut rt, &ids, 1);
        rt.call(inst.drivers[0], ids.fan, &[]).unwrap();
        sync::run_rendezvous(&mut rt, &inst).unwrap();
        (rt.makespan(), rt.take_trace(), rt.stats(), rt.spec_stats())
    };
    let (mk, tr, st, _) = run(SchedImpl::EventIndex);
    for threads in [2usize, 4] {
        let (mk2, tr2, st2, spec) = run(SchedImpl::Speculative { threads });
        assert_eq!(mk, mk2, "P=1 threads={threads}: makespan");
        assert_eq!(tr, tr2, "P=1 threads={threads}: trace");
        assert_eq!(st.per_node, st2.per_node, "P=1 threads={threads}: counters");
        assert_eq!(spec, SpecStats::default(), "P=1 cannot speculate");
    }
}
