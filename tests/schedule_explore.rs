//! Schedule-exploration conformance harness.
//!
//! The dispatch loop's default tie-break rule picks one schedule out of
//! the many legal ones: every candidate tied at the minimum virtual time
//! is causally enabled, so any of them may legally run first. This
//! harness checks the paper's semantic-transparency claim *across* that
//! schedule space:
//!
//! * **Bounded-exhaustive** (micro kernels + tiny app instances): every
//!   reachable tie-break decision vector is enumerated with
//!   [`Explorer`]; each schedule must end sanitizer-clean with final
//!   object state equivalent to the deterministic ParallelOnly
//!   reference.
//! * **Seeded sampling** (all four app kernels at conformance sizes):
//!   ≥200 seeded random schedules per kernel, same assertions.
//! * **Replay**: a failing schedule is reported as its tie-break choice
//!   vector; `TieBreak::Replay` reproduces it bit-identically.
//!
//! The harness's teeth are proved by the seeded mutants in
//! `hem_core::explore::Mutant` (compiled under `--features mutants`):
//! `HEM_MUTANT=<name> cargo test --release --features mutants --test
//! schedule_explore` must fail for every mutant name — the CI
//! conformance job enforces exactly that.

mod common;

use common::*;
use hem::analysis::InterfaceSet;
use hem::apps::{md, sor};
use hem::core::explore::Explorer;
use hem::core::{ExecMode, Runtime, SchedImpl, TieBreak};
use hem::ir::Value;
use hem::machine::cost::CostModel;
use hem::machine::topology::ProcGrid;

/// Tiny app instances for the exhaustive pass (their full tie trees are
/// a few hundred schedules).
fn run_tiny(kernel: &str, mode: ExecMode, tie: TieBreak) -> Outcome {
    let rt = match kernel {
        "sor4" => {
            let ids = sor::build();
            let mut rt = Runtime::new(
                ids.program.clone(),
                4,
                CostModel::cm5(),
                mode,
                InterfaceSet::Full,
            )
            .unwrap();
            rt.enable_sanitizer();
            rt.set_tie_break(tie);
            let inst = sor::setup(
                &mut rt,
                &ids,
                sor::SorParams {
                    n: 4,
                    block: 2,
                    procs: ProcGrid::square(4),
                },
            );
            sor::run(&mut rt, &inst, 1).unwrap();
            rt
        }
        "md4" => {
            let ids = md::build();
            let sys = md::generate(16, 1.2, 4, md::Layout::Spatial, 5);
            let mut rt = Runtime::new(
                ids.program.clone(),
                4,
                CostModel::cm5(),
                mode,
                InterfaceSet::Full,
            )
            .unwrap();
            rt.enable_sanitizer();
            rt.set_tie_break(tie);
            let inst = md::setup(&mut rt, &ids, &sys);
            md::run_iteration(&mut rt, &inst).unwrap();
            rt
        }
        other => panic!("unknown tiny kernel {other}"),
    };
    let mut rt = rt;
    rt.sanitizer_check_quiescent();
    Outcome {
        result: None,
        objects: rt.object_state(),
        tie_choices: rt.tie_choices(),
        tie_log: rt.tie_log().to_vec(),
        violations: rt.take_sanitizer_violations(),
        makespan: rt.makespan(),
        stats: rt.stats(),
    }
}

/// Every protocol micro kernel, both modes, full tie tree: schedules are
/// tie-free or tiny, so the DFS trivially completes — their value is the
/// per-invariant sanitizer coverage (wake masks, shells at nonzero
/// offsets, join delivery, the §4.1 guard) on every explored schedule.
#[test]
fn micro_kernels_conform_on_every_schedule() {
    for m in micro_kernels() {
        let reference = run_micro(&m, ExecMode::ParallelOnly, TieBreak::Det);
        assert_clean(&format!("{}/reference", m.name), &reference);
        for mode in [ExecMode::Hybrid, ExecMode::ParallelOnly] {
            let label = format!("{}/{}", m.name, mode);
            let mut ex = Explorer::new(500);
            while let Some(plan) = ex.next_plan() {
                let o = run_micro(&m, mode, TieBreak::Replay(plan));
                assert_clean(&label, &o);
                assert!(
                    match (&o.result, &reference.result) {
                        (Some(a), Some(b)) => value_close(a, b),
                        (a, b) => a == b,
                    },
                    "{label}: result {:?} != reference {:?}\n{}",
                    o.result,
                    reference.result,
                    replay_help(&label, &o.tie_choices)
                );
                assert_state_close(
                    &format!("{label} [{}]", replay_help(&label, &o.tie_choices)),
                    &o.objects,
                    &reference.objects,
                );
                ex.record(&o.tie_log);
            }
            assert!(
                ex.complete(),
                "{label}: tie tree not exhausted in {} schedules",
                ex.schedules_run()
            );
        }
    }
}

/// Tiny app instances, both modes, full tie tree (a few to a few hundred
/// schedules each — measured: sor4 ≈ 11/4, md4 ≈ 216/8 Hybrid/Par): all
/// schedules sanitizer-clean and equivalent to the ParallelOnly
/// reference.
#[test]
fn tiny_apps_exhaustive_tie_breaks() {
    for kernel in ["sor4", "md4"] {
        let reference = run_tiny(kernel, ExecMode::ParallelOnly, TieBreak::Det);
        assert_clean(&format!("{kernel}/reference"), &reference);
        for mode in [ExecMode::Hybrid, ExecMode::ParallelOnly] {
            let label = format!("{kernel}/{mode}");
            let mut ex = Explorer::new(2000);
            while let Some(plan) = ex.next_plan() {
                let o = run_tiny(kernel, mode, TieBreak::Replay(plan));
                assert_clean(&label, &o);
                assert_state_close(
                    &format!("{label} [{}]", replay_help(&label, &o.tie_choices)),
                    &o.objects,
                    &reference.objects,
                );
                ex.record(&o.tie_log);
            }
            assert!(
                ex.complete(),
                "{label}: tie tree not exhausted in {} schedules",
                ex.schedules_run()
            );
            assert!(ex.schedules_run() >= 1);
        }
    }
}

/// ≥200 seeded random schedules per app kernel (conformance sizes): every
/// sampled Hybrid schedule ends sanitizer-clean with object state
/// equivalent to the deterministic ParallelOnly reference.
#[test]
fn sampled_schedules_per_app_kernel() {
    // Fold the pinned seeds into one sampling stream so the CI matrix
    // (one HYBRID_TEST_SEED per job) samples disjoint schedule sets.
    let mut base = 0xC0FF_EE00_D15E_A5E5u64;
    for s in seeds() {
        base ^= s;
        splitmix64(&mut base);
    }
    const SAMPLES: usize = 200;
    for kernel in APP_KERNELS {
        let reference = run_app(
            kernel,
            ExecMode::ParallelOnly,
            InterfaceSet::Full,
            TieBreak::Det,
        );
        assert_clean(&format!("{kernel}/reference"), &reference);
        let mut tie_points = 0usize;
        for i in 0..SAMPLES {
            let seed = splitmix64(&mut base) ^ i as u64;
            let o = run_app(
                kernel,
                ExecMode::Hybrid,
                InterfaceSet::Full,
                TieBreak::Seeded(seed),
            );
            let label = format!("{kernel}/seeded({seed})");
            assert_clean(&label, &o);
            assert_state_close(
                &format!("{label} [{}]", replay_help(&label, &o.tie_choices)),
                &o.objects,
                &reference.objects,
            );
            tie_points += o.tie_choices.len();
        }
        // The sampler must actually be exploring: across 200 schedules of
        // a kernel with any parallelism there are tie decisions (sync at
        // this size is the near-tieless corner, so allow zero only there).
        if kernel != "sync" {
            assert!(
                tie_points > 0,
                "{kernel}: 200 sampled schedules hit no tie points — sampler inert"
            );
        }
    }
}

/// A recorded tie-break vector replays bit-identically, and the empty
/// vector reproduces the deterministic schedule.
#[test]
fn replay_reproduces_a_sampled_schedule() {
    let det = run_app("sor", ExecMode::Hybrid, InterfaceSet::Full, TieBreak::Det);
    let empty = run_app(
        "sor",
        ExecMode::Hybrid,
        InterfaceSet::Full,
        TieBreak::Replay(Vec::new()),
    );
    assert_eq!(det.makespan, empty.makespan, "empty replay != Det schedule");
    assert_eq!(det.objects, empty.objects, "empty replay != Det state");

    let sampled = run_app(
        "sor",
        ExecMode::Hybrid,
        InterfaceSet::Full,
        TieBreak::Seeded(0xBADC_0FFE),
    );
    assert_clean("sor/seeded(0xBADC0FFE)", &sampled);
    let replayed = run_app(
        "sor",
        ExecMode::Hybrid,
        InterfaceSet::Full,
        TieBreak::Replay(sampled.tie_choices.clone()),
    );
    assert_eq!(
        sampled.makespan, replayed.makespan,
        "replay diverged from the sampled schedule (makespan)"
    );
    assert_eq!(
        sampled.objects, replayed.objects,
        "replay diverged from the sampled schedule (state)"
    );
    assert_eq!(
        sampled.tie_choices, replayed.tie_choices,
        "replay took different decisions"
    );
}

/// The sharded executor under the deterministic tie-break: every micro
/// kernel and app kernel run with `SchedImpl::Sharded` must be
/// sanitizer-clean, bit-identical to the single-threaded event index
/// (makespan, replay vector), and state-equivalent to the ParallelOnly
/// reference. The shard workers carry their own sanitizer state (merged
/// at the end) and their own copy of any seeded protocol mutant, so
/// every mutant the single-threaded conformance run catches is caught
/// here too — the mutant-kill CI job runs this binary under
/// `--features mutants`.
#[test]
fn sharded_config_conforms() {
    for m in micro_kernels() {
        let base = run_micro_sched(&m, ExecMode::Hybrid, TieBreak::Det, SchedImpl::EventIndex);
        assert_clean(&format!("{}/sharded-base", m.name), &base);
        for threads in [2usize, 4] {
            let label = format!("{}/sharded{threads}", m.name);
            let o = run_micro_sched(
                &m,
                ExecMode::Hybrid,
                TieBreak::Det,
                SchedImpl::Sharded { threads },
            );
            assert_clean(&label, &o);
            assert_eq!(o.result, base.result, "{label}: result");
            assert_eq!(o.makespan, base.makespan, "{label}: makespan");
            assert_state_close(&label, &o.objects, &base.objects);
            // The §4.1 guard must engage under the sharded executor too.
            if m.name == "deep-chain" {
                assert!(
                    o.stats.totals().ctx_alloc > 0,
                    "{label}: deep chain never diverted through a heap context"
                );
            }
        }
    }
    for kernel in APP_KERNELS {
        let reference = run_app(
            kernel,
            ExecMode::ParallelOnly,
            InterfaceSet::Full,
            TieBreak::Det,
        );
        let base = run_app(kernel, ExecMode::Hybrid, InterfaceSet::Full, TieBreak::Det);
        for threads in [2usize, 4] {
            let label = format!("{kernel}/sharded{threads}");
            let o = run_app_sched(
                kernel,
                ExecMode::Hybrid,
                InterfaceSet::Full,
                TieBreak::Det,
                SchedImpl::Sharded { threads },
            );
            assert_clean(&label, &o);
            assert_eq!(o.makespan, base.makespan, "{label}: makespan");
            assert_eq!(o.objects, base.objects, "{label}: object state");
            assert_state_close(&label, &o.objects, &reference.objects);
        }
    }
}

/// Exploration precedence: a non-deterministic tie-break routes to the
/// single-threaded exploring loop *before* the scheduler implementation
/// is consulted, so sampled schedules and recorded replay vectors behave
/// identically whether the runtime is configured `EventIndex` or
/// `Sharded` — a choice vector recorded under one config replays
/// bit-identically under the other.
#[test]
fn replay_is_sched_impl_invariant() {
    let sampled = run_app(
        "sor",
        ExecMode::Hybrid,
        InterfaceSet::Full,
        TieBreak::Seeded(0x5EED_5041_11E1),
    );
    assert_clean("sor/seeded-for-sharded-replay", &sampled);
    for threads in [2usize, 4] {
        let label = format!("sor/replay-under-sharded{threads}");
        let replayed = run_app_sched(
            "sor",
            ExecMode::Hybrid,
            InterfaceSet::Full,
            TieBreak::Replay(sampled.tie_choices.clone()),
            SchedImpl::Sharded { threads },
        );
        assert_eq!(sampled.makespan, replayed.makespan, "{label}: makespan");
        assert_eq!(sampled.objects, replayed.objects, "{label}: state");
        assert_eq!(
            sampled.tie_choices, replayed.tie_choices,
            "{label}: decisions"
        );
    }
}

/// The §4.1 depth guard engages on the deep chain: the run completes by
/// diverting through heap contexts (fallback-free would mean the guard
/// never fired) and stays sanitizer-clean.
#[test]
fn deep_chain_reverts_to_parallel() {
    let m = micro_deep_chain();
    let o = run_micro(&m, ExecMode::Hybrid, TieBreak::Det);
    assert_clean("deep-chain", &o);
    assert_eq!(o.result, Some(Value::Int(64)), "deep chain result");
    let t = o.stats.totals();
    assert!(
        t.ctx_alloc > 0,
        "deep chain never diverted through a heap context"
    );
}

/// The speculative (Time-Warp) executor under the deterministic
/// tie-break: `sharded_config_conforms`, with optimism. Every micro and
/// app kernel run with `SchedImpl::Speculative` must be sanitizer-clean
/// (the online sanitizer state is checkpointed and rolled back with the
/// nodes, so a cancelled window's provisional violations vanish),
/// bit-identical to the single-threaded event index, and
/// state-equivalent to the ParallelOnly reference. The workers carry
/// their own copy of any seeded protocol mutant, so every mutant the
/// single-threaded conformance run catches is caught through the
/// speculative path too.
#[test]
fn speculative_config_conforms() {
    for m in micro_kernels() {
        let base = run_micro_sched(&m, ExecMode::Hybrid, TieBreak::Det, SchedImpl::EventIndex);
        assert_clean(&format!("{}/speculative-base", m.name), &base);
        for threads in [2usize, 4] {
            let label = format!("{}/speculative{threads}", m.name);
            let o = run_micro_sched(
                &m,
                ExecMode::Hybrid,
                TieBreak::Det,
                SchedImpl::Speculative { threads },
            );
            assert_clean(&label, &o);
            assert_eq!(o.result, base.result, "{label}: result");
            assert_eq!(o.makespan, base.makespan, "{label}: makespan");
            assert_state_close(&label, &o.objects, &base.objects);
            if m.name == "deep-chain" {
                assert!(
                    o.stats.totals().ctx_alloc > 0,
                    "{label}: deep chain never diverted through a heap context"
                );
            }
        }
    }
    for kernel in APP_KERNELS {
        let reference = run_app(
            kernel,
            ExecMode::ParallelOnly,
            InterfaceSet::Full,
            TieBreak::Det,
        );
        let base = run_app(kernel, ExecMode::Hybrid, InterfaceSet::Full, TieBreak::Det);
        for threads in [2usize, 4] {
            let label = format!("{kernel}/speculative{threads}");
            let o = run_app_sched(
                kernel,
                ExecMode::Hybrid,
                InterfaceSet::Full,
                TieBreak::Det,
                SchedImpl::Speculative { threads },
            );
            assert_clean(&label, &o);
            assert_eq!(o.makespan, base.makespan, "{label}: makespan");
            assert_eq!(o.objects, base.objects, "{label}: object state");
            assert_state_close(&label, &o.objects, &reference.objects);
        }
    }
}

/// Rollback bookkeeping under fire: a zero-lookahead ring with a seeded
/// fault plan forces the speculative executor through straggler
/// rollbacks (asserted via its diagnostics) while every cancelled
/// window's re-sent packets must re-draw *identical* fault fates — which
/// holds only because rollback restores the per-sender wire sequence
/// counters along with the node snapshots. The sixth seeded mutant
/// (`skip-wire-seq-restore`) keeps the speculatively advanced counters
/// across rollback instead; its re-sends then draw fresh sequence
/// numbers, the fault plan re-rolls their fates, and this test's trace /
/// stats diff catches the divergence.
#[test]
fn speculative_rollbacks_preserve_fault_fates() {
    use hem::ir::{BinOp, ProgramBuilder};
    use hem::machine::fault::FaultPlan;
    use hem::machine::NodeId;

    let build = || {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("C", false);
        let peer = pb.field(c, "peer");
        let bounce = pb.declare(c, "bounce", 1);
        pb.define(bounce, |mb| {
            let n = mb.arg(0);
            let done = mb.binl(BinOp::Lt, n, 1);
            mb.if_else(
                done,
                |mb| mb.reply(n),
                |mb| {
                    let pr = mb.get_field(peer);
                    let n1 = mb.binl(BinOp::Sub, n, 1);
                    let s = mb.invoke_into(pr, bounce, &[n1.into()]);
                    let v = mb.touch_get(s);
                    let r = mb.binl(BinOp::Add, v, n);
                    mb.reply(r);
                },
            );
        });
        (pb.finish(), peer, bounce)
    };
    let run = |sched: SchedImpl, seed: u64| {
        let (program, peer, bounce) = build();
        // Unit cost model: zero wire latency, zero lookahead — the
        // regime where speculation (and hence rollback) actually runs.
        let mut rt = Runtime::new(
            program,
            4,
            CostModel::unit(),
            ExecMode::Hybrid,
            InterfaceSet::Full,
        )
        .unwrap();
        rt.sched_impl = sched;
        rt.enable_trace();
        let mut plan = FaultPlan::seeded(seed);
        plan.drop_permille = 20;
        plan.dup_permille = 20;
        plan.jitter_max = 80;
        rt.set_fault_plan(plan);
        let objs: Vec<_> = (0..4)
            .map(|i| rt.alloc_object_by_name("C", NodeId(i)))
            .collect();
        for (i, &o) in objs.iter().enumerate() {
            rt.set_field(o, peer, Value::Obj(objs[(i + 1) % objs.len()]));
        }
        let result = rt.call(objs[0], bounce, &[Value::Int(25)]).expect("runs");
        (
            result,
            rt.makespan(),
            rt.take_trace(),
            rt.stats(),
            rt.spec_stats(),
        )
    };
    for seed in seeds() {
        let (res, mk, trace, stats, _) = run(SchedImpl::EventIndex, seed);
        assert_eq!(res, Some(Value::Int(325)), "seed {seed}: 25+24+...+1");
        let label = format!("faulty-ring/seed{seed}/speculative2");
        let (res2, mk2, trace2, stats2, spec) = run(SchedImpl::Speculative { threads: 2 }, seed);
        assert!(
            spec.rollbacks > 0,
            "{label}: no rollback happened — the test exercises nothing \
             (diagnostics: {spec:?})"
        );
        assert_eq!(res, res2, "{label}: result");
        assert_eq!(mk, mk2, "{label}: makespan");
        if let Some(i) = (0..trace.len().min(trace2.len())).find(|&i| trace[i] != trace2[i]) {
            panic!(
                "{label}: traces diverge at record {i}:\n  event-index: {:?}\n  speculative: {:?}",
                trace[i], trace2[i]
            );
        }
        assert_eq!(trace.len(), trace2.len(), "{label}: trace length");
        assert_eq!(stats.net, stats2.net, "{label}: net/fault stats");
        assert_eq!(
            stats.per_node, stats2.per_node,
            "{label}: per-node counters"
        );
    }
}
