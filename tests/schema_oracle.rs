//! Schema-downgrade differential oracle.
//!
//! Table 3 of the paper restricts which sequential interfaces the
//! generated code may use; [`InterfaceSet::clamp`] models that by pushing
//! every method classified below the available set up to the next more
//! general interface. The downgrade ladder NB → MB → CP → parallel-only
//! must be *semantically invisible*: every rung changes only cost, never
//! the final state. This oracle reruns each app kernel at every rung and
//! asserts final-state equivalence against the fully-clamped end of the
//! ladder (ParallelOnly), plus structural properties of the schema maps
//! themselves (total method count conserved, monotone shift toward CP).

mod common;

use common::*;
use hem::analysis::{Analysis, InterfaceSet, Schema};
use hem::apps::{em3d, md, sor, sync};
use hem::core::{ExecMode, TieBreak};
use hem::ir::Program;

const SETS: [InterfaceSet; 3] = [InterfaceSet::Full, InterfaceSet::MbCp, InterfaceSet::CpOnly];

fn set_name(s: InterfaceSet) -> &'static str {
    match s {
        InterfaceSet::Full => "full",
        InterfaceSet::MbCp => "mbcp",
        InterfaceSet::CpOnly => "cponly",
    }
}

fn app_program(kernel: &str) -> Program {
    match kernel {
        "sor" => sor::build().program,
        "em3d" => em3d::build(4).program,
        "md" => md::build().program,
        "sync" => sync::build().program,
        other => panic!("unknown kernel {other}"),
    }
}

/// Every kernel, every interface set, both execution modes: identical
/// final object state (within float tolerance) to the ParallelOnly
/// reference — the most-clamped point of the ladder, where no sequential
/// interface is used at all.
#[test]
fn downgrade_ladder_preserves_final_state() {
    for kernel in APP_KERNELS {
        let reference = run_app(
            kernel,
            ExecMode::ParallelOnly,
            InterfaceSet::Full,
            TieBreak::Det,
        );
        assert_clean(&format!("{kernel}/reference"), &reference);
        for set in SETS {
            for mode in [ExecMode::Hybrid, ExecMode::ParallelOnly] {
                let label = format!("{kernel}/{}/{mode}", set_name(set));
                let o = run_app(kernel, mode, set, TieBreak::Det);
                assert_clean(&label, &o);
                assert_state_close(&label, &o.objects, &reference.objects);
            }
        }
    }
}

/// A downgraded schedule space is still conformant: sampled seeded
/// schedules under the clamped sets match the unclamped reference.
#[test]
fn downgrade_ladder_under_sampled_schedules() {
    let mut base = 0x5EED_5EED_5EED_5EEDu64;
    for s in seeds() {
        base ^= s;
        splitmix64(&mut base);
    }
    for kernel in APP_KERNELS {
        let reference = run_app(
            kernel,
            ExecMode::ParallelOnly,
            InterfaceSet::Full,
            TieBreak::Det,
        );
        for set in [InterfaceSet::MbCp, InterfaceSet::CpOnly] {
            for _ in 0..8 {
                let seed = splitmix64(&mut base);
                let label = format!("{kernel}/{}/seeded({seed})", set_name(set));
                let o = run_app(kernel, ExecMode::Hybrid, set, TieBreak::Seeded(seed));
                assert_clean(&label, &o);
                assert_state_close(
                    &format!("{label} [{}]", replay_help(&label, &o.tie_choices)),
                    &o.objects,
                    &reference.objects,
                );
            }
        }
    }
}

/// The schema histogram always sums to the program's method count, at
/// every rung of the ladder, for every app kernel.
#[test]
fn histogram_sums_to_method_count() {
    for kernel in APP_KERNELS {
        let program = app_program(kernel);
        let analysis = Analysis::analyze(&program);
        for set in SETS {
            let m = analysis.schemas(set);
            let (nb, mb, cp) = m.histogram();
            assert_eq!(
                nb + mb + cp,
                program.methods.len(),
                "{kernel}/{}: histogram does not cover every method",
                set_name(set)
            );
        }
    }
}

/// Clamping is monotone: restricting the interface set never makes any
/// method's schema *less* general, and the histogram mass only moves
/// toward CP.
#[test]
fn clamp_is_monotone_per_method() {
    for kernel in APP_KERNELS {
        let program = app_program(kernel);
        let analysis = Analysis::analyze(&program);
        let full = analysis.schemas(InterfaceSet::Full);
        let mbcp = analysis.schemas(InterfaceSet::MbCp);
        let cponly = analysis.schemas(InterfaceSet::CpOnly);
        for i in 0..program.methods.len() {
            assert!(
                full.seq[i] <= mbcp.seq[i] && mbcp.seq[i] <= cponly.seq[i],
                "{kernel}: method {i} got less general under clamping \
                 ({:?} / {:?} / {:?})",
                full.seq[i],
                mbcp.seq[i],
                cponly.seq[i]
            );
            assert_eq!(cponly.seq[i], Schema::ContPassing);
            assert_ne!(mbcp.seq[i], Schema::NonBlocking);
        }
        let (nb_f, _, cp_f) = full.histogram();
        let (nb_m, _, cp_m) = mbcp.histogram();
        let (nb_c, _, cp_c) = cponly.histogram();
        assert_eq!(nb_m, 0, "{kernel}: MbCp must eliminate NB");
        assert_eq!(nb_c, 0, "{kernel}: CpOnly must eliminate NB");
        assert!(cp_f <= cp_m && cp_m <= cp_c, "{kernel}: CP mass must grow");
        assert!(nb_f >= nb_m, "{kernel}: NB mass must shrink");
        assert_eq!(cp_c, program.methods.len(), "{kernel}: CpOnly is all-CP");
    }
}

/// Clamp is idempotent and respects the generality order on the full
/// Schema × InterfaceSet product.
#[test]
fn clamp_algebra() {
    let all = [Schema::NonBlocking, Schema::MayBlock, Schema::ContPassing];
    for set in SETS {
        for s in all {
            let once = set.clamp(s);
            assert!(once >= s, "clamp must not lose generality");
            assert_eq!(set.clamp(once), once, "clamp must be idempotent");
        }
    }
    // Tighter sets dominate pointwise.
    for s in all {
        assert!(InterfaceSet::Full.clamp(s) <= InterfaceSet::MbCp.clamp(s));
        assert!(InterfaceSet::MbCp.clamp(s) <= InterfaceSet::CpOnly.clamp(s));
    }
}
