//! Fault-matrix harness: the execution model's semantics must be invariant
//! under interconnect faults.
//!
//! Every application kernel is run under a grid of deterministic fault
//! schedules — random loss (0‰/10‰/50‰), wire duplication, delivery
//! jitter, directed link-partition windows, and node stall windows — with
//! the reliable transport engaged, and the harness asserts:
//!
//! 1. **Scheduler equivalence under faults**: the O(log P) event-index
//!    dispatcher and the linear-scan reference produce bit-identical
//!    traces, clocks, counters, and final object state for the same fault
//!    schedule, in both execution modes.
//! 2. **Repeatability**: the same `(kernel, mode, plan)` run twice is
//!    bit-identical — fault injection is a pure function of the plan.
//! 3. **Semantic transparency**: the final object state equals the
//!    fault-free run's, in both Hybrid and ParallelOnly modes — loss,
//!    duplication, reordering, and partitions change timing, never
//!    answers.
//! 4. **Transport conservation**: exactly-once delivery
//!    (`msgs_sent + replies_sent == msgs_handled`), every received data
//!    copy acked (`acks_sent == msgs_handled + dups_suppressed`), and no
//!    context leaks.
//!
//! Seeds come from `HYBRID_TEST_SEED` when set (the CI fault-soak job
//! pins three), else a built-in trio.

use hem::analysis::InterfaceSet;
use hem::apps::{em3d, md, sor, sync};
use hem::core::trace::TraceRecord;
use hem::core::{ExecMode, NodeObjectState, Runtime, SchedImpl};
use hem::ir::Value;
use hem::machine::cost::CostModel;
use hem::machine::fault::{FaultPlan, LinkWindow, NodeWindow};
use hem::machine::stats::MachineStats;
use hem::machine::topology::ProcGrid;
use hem::NodeId;
use proptest::prelude::*;

/// Everything observable about one run.
struct Outcome {
    makespan: u64,
    stats: MachineStats,
    trace: Vec<TraceRecord>,
    objects: Vec<NodeObjectState>,
}

/// Run `kernel` at P=16 with tracing on and `plan` installed (which also
/// engages the reliable transport); `None` runs the legacy raw framing.
fn run_kernel(kernel: &str, mode: ExecMode, sched: SchedImpl, plan: Option<&FaultPlan>) -> Outcome {
    let arm = |rt: &mut Runtime| {
        rt.sched_impl = sched;
        rt.enable_trace();
        match plan {
            Some(p) => rt.set_fault_plan(p.clone()),
            // Transport on even fault-free, so object state is compared
            // across plans under one protocol.
            None => rt.enable_reliable_transport(),
        }
    };
    let rt = match kernel {
        "sor" => {
            let ids = sor::build();
            let mut rt = Runtime::new(
                ids.program.clone(),
                16,
                CostModel::cm5(),
                mode,
                InterfaceSet::Full,
            )
            .unwrap();
            arm(&mut rt);
            let inst = sor::setup(
                &mut rt,
                &ids,
                sor::SorParams {
                    n: 20,
                    block: 2,
                    procs: ProcGrid::square(16),
                },
            );
            sor::run(&mut rt, &inst, 2).unwrap();
            rt
        }
        "em3d" => {
            let ids = em3d::build(4);
            let g = em3d::generate(40, 4, 16, 0.4, 3);
            let mut rt = Runtime::new(
                ids.program.clone(),
                16,
                CostModel::t3d(),
                mode,
                InterfaceSet::Full,
            )
            .unwrap();
            arm(&mut rt);
            let inst = em3d::setup(&mut rt, &ids, &g);
            em3d::run(&mut rt, &inst, em3d::Style::Pull, 2).unwrap();
            rt
        }
        "md" => {
            let ids = md::build();
            let sys = md::generate(120, 1.2, 16, md::Layout::Spatial, 5);
            let mut rt = Runtime::new(
                ids.program.clone(),
                16,
                CostModel::cm5(),
                mode,
                InterfaceSet::Full,
            )
            .unwrap();
            arm(&mut rt);
            let inst = md::setup(&mut rt, &ids, &sys);
            md::run_iteration(&mut rt, &inst).unwrap();
            rt
        }
        "sync" => {
            let ids = sync::build();
            let mut rt = Runtime::new(
                ids.program.clone(),
                16,
                CostModel::cm5(),
                mode,
                InterfaceSet::Full,
            )
            .unwrap();
            arm(&mut rt);
            let inst = sync::setup(&mut rt, &ids, 16);
            // The full structure mix: acked multicast (fan), fire-and-
            // forget multicast (scatter), modeled reduce and barrier, and
            // the continuation-stored rendezvous — so every collective
            // leg kind meets every fault fate.
            rt.call(inst.drivers[0], ids.fan, &[]).unwrap();
            rt.call(inst.drivers[0], ids.scatter, &[]).unwrap();
            rt.call(inst.drivers[1], ids.sum_all, &[]).unwrap();
            rt.call(inst.drivers[2], ids.quiesce, &[]).unwrap();
            sync::run_rendezvous(&mut rt, &inst).unwrap();
            rt
        }
        other => panic!("unknown kernel {other}"),
    };
    assert!(
        rt.is_quiescent(),
        "{kernel}/{mode}: not quiescent after run"
    );
    assert_eq!(rt.live_contexts(), 0, "{kernel}/{mode}: context leak");
    let mut rt = rt;
    Outcome {
        makespan: rt.makespan(),
        stats: rt.stats(),
        trace: rt.take_trace(),
        objects: rt.object_state(),
    }
}

const KERNELS: [&str; 4] = ["sor", "em3d", "md", "sync"];

/// Seeds for the matrix: `HYBRID_TEST_SEED` (one seed) when set, else a
/// pinned trio. The CI fault-soak job sweeps its own pinned seeds through
/// the env var.
fn seeds() -> Vec<u64> {
    match std::env::var("HYBRID_TEST_SEED") {
        Ok(s) => vec![s
            .trim()
            .parse()
            .expect("HYBRID_TEST_SEED must be an unsigned integer")],
        Err(_) => vec![1, 0xDEAD_BEEF, 3_141_592_653],
    }
}

/// The fault grid for one seed: loss ∈ {0‰, 10‰, 50‰} crossed with
/// duplication and jitter, plus a partition schedule and a stall schedule.
fn fault_grid(seed: u64) -> Vec<FaultPlan> {
    let mut plans = Vec::new();
    for (drop_permille, dup_permille, jitter_max) in [
        (0, 0, 0),
        (10, 0, 0),
        (50, 0, 0),
        (0, 30, 120),
        (50, 20, 60),
    ] {
        let mut p = FaultPlan::seeded(seed);
        p.drop_permille = drop_permille;
        p.dup_permille = dup_permille;
        p.jitter_max = jitter_max;
        plans.push(p);
    }
    // Directed link partitions: node 1 cannot reach node 0 for a while
    // (requests get through, replies and acks do not), and later nothing
    // reaches node 3.
    let mut p = FaultPlan::seeded(seed);
    p.drop_permille = 10;
    p.partitions = vec![
        LinkWindow {
            src: Some(NodeId(1)),
            dest: Some(NodeId(0)),
            from: 2_000,
            until: 12_000,
        },
        LinkWindow {
            src: None,
            dest: Some(NodeId(3)),
            from: 5_000,
            until: 9_000,
        },
    ];
    plans.push(p);
    // A node stall: deliveries into node 2 are deferred past the window.
    let mut p = FaultPlan::seeded(seed);
    p.dup_permille = 10;
    p.stalls = vec![NodeWindow {
        node: NodeId(2),
        from: 1_000,
        until: 20_000,
    }];
    plans.push(p);
    plans
}

/// Value equality up to floating-point accumulation order: different
/// event orders (across modes, or across fault plans) re-associate float
/// sums, so floats compare within a tolerance; everything else exactly.
fn value_close(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Float(x), Value::Float(y)) => {
            (x - y).abs() <= 1e-6_f64.max(1e-9 * x.abs().max(y.abs()))
        }
        _ => a == b,
    }
}

type ObjectState = [Vec<(u32, Vec<Value>, Vec<Vec<Value>>)>];

/// Structural object-state equality with [`value_close`] on the payload.
fn assert_state_close(label: &str, a: &ObjectState, b: &ObjectState) {
    assert_eq!(a.len(), b.len(), "{label}: node count");
    for (ni, (na, nb)) in a.iter().zip(b).enumerate() {
        assert_eq!(na.len(), nb.len(), "{label}: node {ni} object count");
        for (oi, (oa, ob)) in na.iter().zip(nb).enumerate() {
            assert_eq!(oa.0, ob.0, "{label}: node {ni} obj {oi} class");
            let scal =
                oa.1.len() == ob.1.len() && oa.1.iter().zip(&ob.1).all(|(x, y)| value_close(x, y));
            let arr = oa.2.len() == ob.2.len()
                && oa.2.iter().zip(&ob.2).all(|(xs, ys)| {
                    xs.len() == ys.len() && xs.iter().zip(ys).all(|(x, y)| value_close(x, y))
                });
            assert!(
                scal && arr,
                "{label}: node {ni} obj {oi} state differs:\n  a: {oa:?}\n  b: {ob:?}"
            );
        }
    }
}

fn assert_bit_identical(label: &str, a: &Outcome, b: &Outcome) {
    assert_eq!(a.makespan, b.makespan, "{label}: makespan");
    assert_eq!(a.stats.node_time, b.stats.node_time, "{label}: clocks");
    assert_eq!(a.stats.per_node, b.stats.per_node, "{label}: counters");
    assert_eq!(a.stats.net, b.stats.net, "{label}: net/fault stats");
    if let Some(i) = (0..a.trace.len().min(b.trace.len())).find(|&i| a.trace[i] != b.trace[i]) {
        panic!(
            "{label}: traces diverge at record {i}:\n  a: {:?}\n  b: {:?}",
            a.trace[i], b.trace[i]
        );
    }
    assert_eq!(a.trace.len(), b.trace.len(), "{label}: trace length");
    assert_eq!(a.objects, b.objects, "{label}: object state");
}

fn assert_conservation(label: &str, o: &Outcome) {
    let t = o.stats.totals();
    assert_eq!(
        t.msgs_sent + t.replies_sent,
        t.msgs_handled,
        "{label}: exactly-once delivery"
    );
    assert_eq!(
        t.acks_sent,
        t.msgs_handled + t.dups_suppressed,
        "{label}: every received data copy acked"
    );
    assert_eq!(t.ctx_alloc, t.ctx_free, "{label}: context conservation");
    // Wire duplication can deliver (and so handle) one ack twice; beyond
    // that, acks cannot be conjured.
    assert!(
        t.acks_handled <= t.acks_sent + o.stats.net.faults.duplicated,
        "{label}: acks cannot be conjured"
    );
}

/// The full matrix: every kernel × every fault plan × every seed, checked
/// for scheduler equivalence, repeatability, conservation, and
/// fault-transparency of the final object state.
#[test]
fn fault_matrix_semantics_invariant() {
    for kernel in KERNELS {
        // Fault-free references (transport on), one per mode.
        let clean_h = run_kernel(kernel, ExecMode::Hybrid, SchedImpl::EventIndex, None);
        let clean_p = run_kernel(kernel, ExecMode::ParallelOnly, SchedImpl::EventIndex, None);
        assert_conservation(&format!("{kernel}/clean/hybrid"), &clean_h);
        assert_state_close(
            &format!("{kernel}: hybrid vs parallel-only final state (fault-free)"),
            &clean_h.objects,
            &clean_p.objects,
        );
        for seed in seeds() {
            for (pi, plan) in fault_grid(seed).iter().enumerate() {
                let label = format!("{kernel}/seed{seed}/plan{pi}");
                let h_heap =
                    run_kernel(kernel, ExecMode::Hybrid, SchedImpl::EventIndex, Some(plan));
                let h_scan =
                    run_kernel(kernel, ExecMode::Hybrid, SchedImpl::LinearScan, Some(plan));
                assert_bit_identical(&format!("{label}/hybrid heap-vs-scan"), &h_heap, &h_scan);
                let h_again =
                    run_kernel(kernel, ExecMode::Hybrid, SchedImpl::EventIndex, Some(plan));
                assert_bit_identical(&format!("{label}/hybrid repeat"), &h_heap, &h_again);
                let p_heap = run_kernel(
                    kernel,
                    ExecMode::ParallelOnly,
                    SchedImpl::EventIndex,
                    Some(plan),
                );
                let p_scan = run_kernel(
                    kernel,
                    ExecMode::ParallelOnly,
                    SchedImpl::LinearScan,
                    Some(plan),
                );
                assert_bit_identical(&format!("{label}/par heap-vs-scan"), &p_heap, &p_scan);
                assert_conservation(&format!("{label}/hybrid"), &h_heap);
                assert_conservation(&format!("{label}/par"), &p_heap);
                // Faults perturb timing, never answers: final object state
                // matches the fault-free run in both modes.
                assert_state_close(
                    &format!("{label}: hybrid state under faults"),
                    &h_heap.objects,
                    &clean_h.objects,
                );
                assert_state_close(
                    &format!("{label}: parallel-only state under faults"),
                    &p_heap.objects,
                    &clean_p.objects,
                );
                // The injector actually did something on lossy plans.
                if plan.drop_permille >= 50 || !plan.partitions.is_empty() {
                    let t = h_heap.stats.totals();
                    assert!(
                        h_heap.stats.net.faults.lost() > 0,
                        "{label}: lossy plan lost nothing"
                    );
                    assert!(t.retransmits > 0, "{label}: losses but no retransmits");
                }
                if plan.dup_permille >= 10 {
                    assert!(
                        h_heap.stats.net.faults.duplicated > 0,
                        "{label}: duplicating plan duplicated nothing"
                    );
                }
            }
        }
    }
}

/// Regression: a wire-duplicated copy of a frame addressed to a stalled
/// node must be deferred through `stalled_until` exactly like the
/// original. The stall window opens at time 0, so *every* delivery into
/// node 2 — original or duplicate — is deferred to at or past the
/// window's end, and node 2 cannot handle any message before it: a
/// handling earlier than `until` can only come from a copy that bypassed
/// the stall fixpoint.
#[test]
fn duplicates_respect_stall_windows() {
    use hem::core::trace::TraceEvent;
    const UNTIL: u64 = 20_000;
    for seed in seeds() {
        let mut plan = FaultPlan::seeded(seed);
        plan.dup_permille = 150;
        plan.stalls = vec![NodeWindow {
            node: NodeId(2),
            from: 0,
            until: UNTIL,
        }];
        let o = run_kernel("sor", ExecMode::Hybrid, SchedImpl::EventIndex, Some(&plan));
        let label = format!("dup-stall/seed{seed}");
        // The plan must actually exercise both fault mechanisms.
        assert!(
            o.stats.net.faults.duplicated > 0,
            "{label}: plan duplicated nothing"
        );
        assert!(
            o.stats.net.faults.stall_defers > 0,
            "{label}: plan deferred nothing"
        );
        for rec in &o.trace {
            if let TraceEvent::MsgHandled { node, from, .. } = rec.event {
                assert!(
                    node != NodeId(2) || rec.at >= UNTIL,
                    "{label}: message from {from:?} handled at stalled node 2 \
                     at {} — inside the stall window [0, {UNTIL})",
                    rec.at
                );
            }
        }
        assert_conservation(&label, &o);
    }
}

/// Sharded fault soak: the windowed multi-thread executor against the
/// single-threaded event index under the grid's two nastiest plans (mixed
/// loss + duplication + jitter; duplication + a long node stall) — every
/// kernel, every pinned seed, threads ∈ {2, 4}, bit-identical
/// everything. This is the fault-plan half of the `threads`-invariance
/// contract (the fault-free half lives in `parallel_determinism.rs`).
#[test]
fn sharded_matches_event_index_under_fault_grid() {
    for kernel in KERNELS {
        for seed in seeds() {
            let grid = fault_grid(seed);
            for (pi, plan) in [(4, &grid[4]), (6, &grid[6])] {
                let label = format!("{kernel}/seed{seed}/plan{pi}/sharded");
                let base = run_kernel(kernel, ExecMode::Hybrid, SchedImpl::EventIndex, Some(plan));
                for threads in [2usize, 4] {
                    let sharded = run_kernel(
                        kernel,
                        ExecMode::Hybrid,
                        SchedImpl::Sharded { threads },
                        Some(plan),
                    );
                    assert_bit_identical(&format!("{label}/threads{threads}"), &base, &sharded);
                }
                assert_conservation(&label, &base);
            }
        }
    }
}

/// Zero-fault transport sanity: with the transport on but an all-zero
/// plan, nothing is lost, nothing retransmits, and the object state
/// matches the raw (transport-off) framing.
#[test]
fn zero_fault_transport_is_transparent() {
    for kernel in KERNELS {
        let raw = run_kernel_raw(kernel);
        let clean = run_kernel(kernel, ExecMode::Hybrid, SchedImpl::EventIndex, None);
        let t = clean.stats.totals();
        assert_eq!(t.retransmits, 0, "{kernel}: retransmits on a clean wire");
        assert_eq!(t.dups_suppressed, 0, "{kernel}: duplicates on a clean wire");
        assert_eq!(
            t.acks_sent, t.msgs_handled,
            "{kernel}: one ack per data frame"
        );
        assert_eq!(clean.stats.net.faults.lost(), 0);
        assert_state_close(
            &format!("{kernel}: transport changed the answer"),
            &raw.objects,
            &clean.objects,
        );
    }
}

/// Legacy framing run (no transport, no plan) for the transparency check.
fn run_kernel_raw(kernel: &str) -> Outcome {
    match kernel {
        "sor" => {
            let ids = sor::build();
            let mut rt = Runtime::new(
                ids.program.clone(),
                16,
                CostModel::cm5(),
                ExecMode::Hybrid,
                InterfaceSet::Full,
            )
            .unwrap();
            let inst = sor::setup(
                &mut rt,
                &ids,
                sor::SorParams {
                    n: 20,
                    block: 2,
                    procs: ProcGrid::square(16),
                },
            );
            sor::run(&mut rt, &inst, 2).unwrap();
            Outcome {
                makespan: rt.makespan(),
                stats: rt.stats(),
                trace: Vec::new(),
                objects: rt.object_state(),
            }
        }
        "em3d" => {
            let ids = em3d::build(4);
            let g = em3d::generate(40, 4, 16, 0.4, 3);
            let mut rt = Runtime::new(
                ids.program.clone(),
                16,
                CostModel::t3d(),
                ExecMode::Hybrid,
                InterfaceSet::Full,
            )
            .unwrap();
            let inst = em3d::setup(&mut rt, &ids, &g);
            em3d::run(&mut rt, &inst, em3d::Style::Pull, 2).unwrap();
            Outcome {
                makespan: rt.makespan(),
                stats: rt.stats(),
                trace: Vec::new(),
                objects: rt.object_state(),
            }
        }
        "md" => {
            let ids = md::build();
            let sys = md::generate(120, 1.2, 16, md::Layout::Spatial, 5);
            let mut rt = Runtime::new(
                ids.program.clone(),
                16,
                CostModel::cm5(),
                ExecMode::Hybrid,
                InterfaceSet::Full,
            )
            .unwrap();
            let inst = md::setup(&mut rt, &ids, &sys);
            md::run_iteration(&mut rt, &inst).unwrap();
            Outcome {
                makespan: rt.makespan(),
                stats: rt.stats(),
                trace: Vec::new(),
                objects: rt.object_state(),
            }
        }
        "sync" => {
            let ids = sync::build();
            let mut rt = Runtime::new(
                ids.program.clone(),
                16,
                CostModel::cm5(),
                ExecMode::Hybrid,
                InterfaceSet::Full,
            )
            .unwrap();
            let inst = sync::setup(&mut rt, &ids, 16);
            rt.call(inst.drivers[0], ids.fan, &[]).unwrap();
            rt.call(inst.drivers[0], ids.scatter, &[]).unwrap();
            rt.call(inst.drivers[1], ids.sum_all, &[]).unwrap();
            rt.call(inst.drivers[2], ids.quiesce, &[]).unwrap();
            sync::run_rendezvous(&mut rt, &inst).unwrap();
            Outcome {
                makespan: rt.makespan(),
                stats: rt.stats(),
                trace: Vec::new(),
                objects: rt.object_state(),
            }
        }
        other => panic!("unknown kernel {other}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Randomized corner of the matrix: arbitrary loss/duplication/jitter
    /// rates and seeds on the cheapest kernel, checking the same three
    /// properties as the grid.
    #[test]
    fn random_fault_plans_preserve_semantics(
        seed in any::<u64>(),
        drop_permille in 0u16..=60,
        dup_permille in 0u16..=40,
        jitter_max in 0u64..=100,
    ) {
        let mut plan = FaultPlan::seeded(seed);
        plan.drop_permille = drop_permille;
        plan.dup_permille = dup_permille;
        plan.jitter_max = jitter_max;
        let clean = run_kernel("sync", ExecMode::Hybrid, SchedImpl::EventIndex, None);
        let heap = run_kernel("sync", ExecMode::Hybrid, SchedImpl::EventIndex, Some(&plan));
        let scan = run_kernel("sync", ExecMode::Hybrid, SchedImpl::LinearScan, Some(&plan));
        assert_bit_identical("random/heap-vs-scan", &heap, &scan);
        assert_conservation("random", &heap);
        assert_state_close("random: state under faults", &heap.objects, &clean.objects);
        let par = run_kernel("sync", ExecMode::ParallelOnly, SchedImpl::EventIndex, Some(&plan));
        assert_conservation("random/par", &par);
        assert_state_close("random: parallel-only state", &par.objects, &clean.objects);
    }
}
