//! Host-parallel sharded-executor determinism.
//!
//! `SchedImpl::Sharded` spreads the event index across host worker
//! threads under a conservative virtual-time window protocol; its
//! contract is that host parallelism is *invisible* — the run is the same
//! pure function of (program, placement, cost model, mode, fault plan) at
//! every thread count. These tests pin that down against the
//! single-threaded event index on all four app kernels × three pinned
//! seeds, with and without a fault plan:
//!
//! * bit-identical makespans, per-node clocks, per-node counters, and
//!   network/fault statistics;
//! * bit-identical full trace sequences (first divergence reported);
//! * bit-identical observer streams — an attached `hem_obs::Rollup` sees
//!   the merged shard captures in exactly the single-threaded emission
//!   order, so the rendered rollup *report text* matches byte for byte.
//!
//! The heap diagnostics (`heap_pushes`, `stale_pops`, `max_heap_depth`)
//! are per-worker implementation details and read 0 under the sharded
//! executor (the linear scan sets the precedent); they are deliberately
//! excluded from the comparison, as are the reports (which never show
//! them).
//!
//! Seeds come from `HYBRID_TEST_SEED` when set (the CI
//! parallel-determinism job pins three), else a built-in trio.

use hem::analysis::InterfaceSet;
use hem::apps::{em3d, md, sor, sync};
use hem::core::trace::TraceRecord;
use hem::core::{ExecMode, Runtime, SchedImpl};
use hem::machine::cost::CostModel;
use hem::machine::fault::FaultPlan;
use hem::machine::stats::MachineStats;
use hem::machine::topology::ProcGrid;
use hem::obs::{Report, Rollup};

/// Everything observable about one run, including the rendered rollup
/// report fed by an *online* observer (not the trace buffer).
struct Outcome {
    makespan: u64,
    stats: MachineStats,
    trace: Vec<TraceRecord>,
    report: String,
}

/// Run `kernel` at P=16 with tracing and a rollup observer on; `seed`
/// drives graph/layout generation (MD, EM3D) and the fault plan.
fn run_kernel(kernel: &str, seed: u64, sched: SchedImpl, plan: Option<&FaultPlan>) -> Outcome {
    let arm = |rt: &mut Runtime| {
        rt.sched_impl = sched;
        rt.enable_trace();
        rt.attach_observer(Box::new(Rollup::new()));
        if let Some(p) = plan {
            rt.set_fault_plan(p.clone());
        }
    };
    let mut rt = match kernel {
        "sor" => {
            let ids = sor::build();
            let mut rt = Runtime::new(
                ids.program.clone(),
                16,
                CostModel::cm5(),
                ExecMode::Hybrid,
                InterfaceSet::Full,
            )
            .unwrap();
            arm(&mut rt);
            let inst = sor::setup(
                &mut rt,
                &ids,
                sor::SorParams {
                    n: 20,
                    block: 2,
                    procs: ProcGrid::square(16),
                },
            );
            sor::run(&mut rt, &inst, 2).unwrap();
            rt
        }
        "em3d" => {
            let ids = em3d::build(4);
            let g = em3d::generate(40, 4, 16, 0.4, seed);
            let mut rt = Runtime::new(
                ids.program.clone(),
                16,
                CostModel::t3d(),
                ExecMode::Hybrid,
                InterfaceSet::Full,
            )
            .unwrap();
            arm(&mut rt);
            let inst = em3d::setup(&mut rt, &ids, &g);
            em3d::run(&mut rt, &inst, em3d::Style::Pull, 2).unwrap();
            rt
        }
        "md" => {
            let ids = md::build();
            let sys = md::generate(120, 1.2, 16, md::Layout::Spatial, seed);
            let mut rt = Runtime::new(
                ids.program.clone(),
                16,
                CostModel::cm5(),
                ExecMode::Hybrid,
                InterfaceSet::Full,
            )
            .unwrap();
            arm(&mut rt);
            let inst = md::setup(&mut rt, &ids, &sys);
            md::run_iteration(&mut rt, &inst).unwrap();
            rt
        }
        "sync" => {
            let ids = sync::build();
            let mut rt = Runtime::new(
                ids.program.clone(),
                16,
                CostModel::cm5(),
                ExecMode::Hybrid,
                InterfaceSet::Full,
            )
            .unwrap();
            arm(&mut rt);
            let inst = sync::setup(&mut rt, &ids, 16);
            rt.call(inst.drivers[0], ids.fan, &[]).unwrap();
            rt.call(inst.drivers[0], ids.scatter, &[]).unwrap();
            rt.call(inst.drivers[1], ids.sum_all, &[]).unwrap();
            rt.call(inst.drivers[2], ids.quiesce, &[]).unwrap();
            sync::run_rendezvous(&mut rt, &inst).unwrap();
            rt
        }
        other => panic!("unknown kernel {other}"),
    };
    let stats = rt.stats();
    let any: Box<dyn std::any::Any> = rt.take_observer().expect("rollup attached");
    let rollup = any.downcast::<Rollup>().expect("a Rollup");
    let report = Report::new(kernel, &rollup, &stats, rt.program(), rt.schemas()).text();
    Outcome {
        makespan: rt.makespan(),
        stats,
        trace: rt.take_trace(),
        report,
    }
}

const KERNELS: [&str; 4] = ["sor", "em3d", "md", "sync"];

/// Thread counts the matrix diffs against the single-threaded baseline.
const THREADS: [usize; 2] = [2, 4];

/// Seeds: `HYBRID_TEST_SEED` (one seed) when set, else a pinned trio,
/// matching the fault-matrix harness.
fn seeds() -> Vec<u64> {
    match std::env::var("HYBRID_TEST_SEED") {
        Ok(s) => vec![s
            .trim()
            .parse()
            .expect("HYBRID_TEST_SEED must be an unsigned integer")],
        Err(_) => vec![1, 0xDEAD_BEEF, 3_141_592_653],
    }
}

fn assert_bit_identical(label: &str, base: &Outcome, sharded: &Outcome) {
    assert_eq!(base.makespan, sharded.makespan, "{label}: makespan");
    assert_eq!(
        base.stats.node_time, sharded.stats.node_time,
        "{label}: per-node clocks"
    );
    assert_eq!(
        base.stats.per_node, sharded.stats.per_node,
        "{label}: per-node counters"
    );
    assert_eq!(
        base.stats.net, sharded.stats.net,
        "{label}: net/fault stats"
    );
    if let Some(i) =
        (0..base.trace.len().min(sharded.trace.len())).find(|&i| base.trace[i] != sharded.trace[i])
    {
        panic!(
            "{label}: traces diverge at record {i}:\n  threads=1: {:?}\n  sharded:   {:?}",
            base.trace[i], sharded.trace[i]
        );
    }
    assert_eq!(
        base.trace.len(),
        sharded.trace.len(),
        "{label}: trace length"
    );
    assert_eq!(
        base.stats.sched.events_dispatched, sharded.stats.sched.events_dispatched,
        "{label}: events dispatched"
    );
    assert_eq!(base.report, sharded.report, "{label}: rollup report text");
}

/// Fault-free matrix: every kernel × every pinned seed, sharded at 2 and
/// 4 threads vs the single-threaded event index.
#[test]
fn sharded_matches_event_index_on_all_kernels() {
    for kernel in KERNELS {
        for seed in seeds() {
            let base = run_kernel(kernel, seed, SchedImpl::EventIndex, None);
            for threads in THREADS {
                let sh = run_kernel(kernel, seed, SchedImpl::Sharded { threads }, None);
                assert_bit_identical(&format!("{kernel}/seed{seed}/threads{threads}"), &base, &sh);
            }
        }
    }
}

/// Faulty matrix: the same diff with a seeded fault plan installed
/// (loss, duplication, jitter; reliable transport engaged) — the window
/// protocol must stay conservative when retransmission timers and
/// fault-perturbed delivery times are in play.
#[test]
fn sharded_matches_event_index_under_faults() {
    for kernel in KERNELS {
        for seed in seeds() {
            let mut plan = FaultPlan::seeded(seed);
            plan.drop_permille = 20;
            plan.dup_permille = 20;
            plan.jitter_max = 80;
            let base = run_kernel(kernel, seed, SchedImpl::EventIndex, Some(&plan));
            for threads in THREADS {
                let sh = run_kernel(kernel, seed, SchedImpl::Sharded { threads }, Some(&plan));
                assert_bit_identical(
                    &format!("{kernel}/seed{seed}/faulty/threads{threads}"),
                    &base,
                    &sh,
                );
            }
        }
    }
}

/// Degenerate thread counts fall back to the event index outright:
/// `threads` ∈ {0, 1} and thread counts above the node count (clamped)
/// all reproduce the baseline.
#[test]
fn degenerate_thread_counts_match() {
    let base = run_kernel("sor", 1, SchedImpl::EventIndex, None);
    for threads in [0usize, 1, 16, 64] {
        let sh = run_kernel("sor", 1, SchedImpl::Sharded { threads }, None);
        assert_bit_identical(&format!("sor/degenerate/threads{threads}"), &base, &sh);
    }
}
