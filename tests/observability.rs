//! Integration tests for the observability layer (`hem-obs`): rollups
//! cross-checked against the machine's own counters, Perfetto export
//! validity, the critical-path == makespan invariant, observer
//! bit-identity, and the truncated-ring accounting — on real runs of all
//! four app kernels through the same `profile` runner `hemprof` uses.

use hem::core::MsgCause;
use hem::obs::{critpath, perfetto, Report, Rollup, Timeline};
use hem_bench::profile::{Kernel, ProfileConfig};

/// Small-but-busy configurations, one per kernel.
fn small(kernel: Kernel) -> ProfileConfig {
    let mut cfg = ProfileConfig::new(kernel);
    match kernel {
        Kernel::Sor => {
            cfg.p = 16;
            cfg.size = 16;
        }
        Kernel::Md => {
            cfg.p = 8;
            cfg.size = 64;
        }
        Kernel::Em3d => {
            cfg.p = 8;
            cfg.size = 32;
        }
        Kernel::Fib => {
            cfg.p = 2;
            cfg.size = 12;
        }
    }
    cfg
}

#[test]
fn rollup_counts_match_machine_stats_on_all_kernels() {
    for kernel in Kernel::ALL {
        let mut rt = small(kernel).run();
        let records = rt.take_trace();
        let stats = rt.stats();
        let totals = stats.totals();
        let rollup = Rollup::from_records(&records);
        let name = kernel.name();

        // Every wire injection emitted exactly one MsgSent.
        assert_eq!(rollup.total_sent(), stats.net.sent, "{name}: sent");

        // Trace-derived per-cause counts equal the machine counters.
        // `msgs_sent` covers requests plus every collective leg; the trace
        // splits the legs out by cause.
        let links = rollup.per_link();
        let mut by_cause = [0u64; 7];
        for l in links.values() {
            for (b, m) in by_cause.iter_mut().zip(l.msgs) {
                *b += m;
            }
        }
        let coll_legs = by_cause[4] + by_cause[5] + by_cause[6];
        assert_eq!(
            by_cause[0],
            totals.msgs_sent - totals.coll_legs_sent,
            "{name}: requests"
        );
        assert_eq!(by_cause[1], totals.replies_sent, "{name}: replies");
        assert_eq!(by_cause[2], totals.acks_sent, "{name}: acks");
        assert_eq!(by_cause[3], totals.retransmits, "{name}: retransmits");
        assert_eq!(coll_legs, totals.coll_legs_sent, "{name}: collective legs");

        // Word accounting agrees with both the senders' counters and the
        // interconnect's wire-class buckets.
        let mut words = [0u64; 7];
        for l in links.values() {
            for (wd, w) in words.iter_mut().zip(l.words) {
                *wd += w;
            }
        }
        assert_eq!(words[0], totals.req_words_sent, "{name}: request words");
        assert_eq!(words[1], totals.reply_words_sent, "{name}: reply words");
        assert_eq!(
            words[4] + words[5] + words[6],
            totals.coll_words_sent,
            "{name}: collective words"
        );
        let (data, ack, retx, coll) = rollup.words_by_class();
        assert_eq!(data, stats.net.data_words, "{name}: data words");
        assert_eq!(ack, stats.net.ack_words, "{name}: ack words");
        assert_eq!(retx, stats.net.retx_words, "{name}: retx words");
        assert_eq!(coll, stats.net.coll_words, "{name}: collective words");

        // Per-node sends: link rows summed over destinations equal each
        // node's own counters.
        for (n, c) in stats.per_node.iter().enumerate() {
            let sent = rollup.sent_by_node(n as u32);
            assert_eq!(
                sent[0],
                c.msgs_sent - c.coll_legs_sent,
                "{name}: node {n} requests"
            );
            assert_eq!(sent[1], c.replies_sent, "{name}: node {n} replies");
            assert_eq!(
                sent[4] + sent[5] + sent[6],
                c.coll_legs_sent,
                "{name}: node {n} collective legs"
            );
        }

        // Invocation-path rollups equal the counter totals.
        let g = rollup.grand_total();
        assert_eq!(g.stack_nb, totals.stack_nb, "{name}: NB");
        assert_eq!(g.stack_mb, totals.stack_mb, "{name}: MB");
        assert_eq!(g.stack_cp, totals.stack_cp, "{name}: CP");
        assert_eq!(g.inlined, totals.inlined, "{name}: inlined");
        assert_eq!(
            g.par_invokes + g.fallbacks,
            totals.ctx_alloc,
            "{name}: every heap context came from ParInvoke or Fallback"
        );
        assert_eq!(
            rollup.residency.count(),
            totals.ctx_free,
            "{name}: one residency sample per freed context"
        );
        assert_eq!(rollup.total_conts(), totals.conts_created, "{name}: conts");
        assert_eq!(rollup.suspends, totals.suspends, "{name}: suspends");

        // Handled messages (requests + replies + collective legs) match
        // the receivers.
        let handled = rollup.handled_by_cause();
        assert_eq!(
            handled[0] + handled[1] + handled[4] + handled[5] + handled[6],
            totals.msgs_handled,
            "{name}: handled"
        );
        assert_eq!(
            handled[4] + handled[5] + handled[6],
            totals.coll_legs_handled,
            "{name}: collective legs handled"
        );

        assert_eq!(stats.sched.dropped_events, 0, "{name}: unbounded trace");
    }
}

#[test]
fn report_renders_for_all_kernels_and_json_validates() {
    for kernel in Kernel::ALL {
        let cfg = small(kernel);
        let mut rt = cfg.run();
        let records = rt.take_trace();
        let rollup = Rollup::from_records(&records);
        let report = Report::new(
            &cfg.title(),
            &rollup,
            &rt.stats(),
            rt.program(),
            rt.schemas(),
        );

        let text = report.text();
        assert!(text.contains("makespan"), "{}: text report", kernel.name());
        assert!(!report.rows.is_empty(), "{}: method rows", kernel.name());

        let doc = hem::obs::json::Json::parse(&report.json())
            .unwrap_or_else(|e| panic!("{}: report JSON invalid: {e}", kernel.name()));
        let methods = doc.get("methods").unwrap().as_arr().unwrap();
        assert!(!methods.is_empty(), "{}: JSON methods", kernel.name());
        assert_eq!(
            doc.get("makespan").unwrap().as_num(),
            Some(rt.makespan() as f64),
            "{}: JSON makespan",
            kernel.name()
        );
    }
}

#[test]
fn perfetto_export_validates_with_spans_on_every_node_and_flow_arrows() {
    let cfg = small(Kernel::Sor);
    let mut rt = cfg.run();
    let records = rt.take_trace();
    let stats = rt.stats();
    let tl = Timeline::build(&records, stats.per_node.len());
    let out = perfetto::to_json(&records, &tl, rt.program());

    let doc = hem::obs::json::Json::parse(&out).expect("perfetto JSON parses");
    let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
    assert!(!events.is_empty());

    let ph_of = |e: &hem::obs::json::Json| e.get("ph").and_then(|v| v.as_str()).map(String::from);
    // ≥1 scheduler slice per node.
    for n in 0..stats.per_node.len() {
        assert!(
            events.iter().any(|e| ph_of(e).as_deref() == Some("X")
                && e.get("pid").and_then(|v| v.as_num()) == Some(n as f64)),
            "node {n} has a slice"
        );
    }
    // Flow arrows present and paired.
    let count = |p: &str| {
        events
            .iter()
            .filter(|e| ph_of(e).as_deref() == Some(p))
            .count()
    };
    assert!(count("s") > 0, "flow starts exist");
    assert_eq!(count("s"), count("f"), "every flow start has an end");
    // Context spans paired too.
    assert_eq!(count("b"), count("e"), "async spans are balanced");
    assert!(count("b") > 0, "context spans exist");
}

#[test]
fn critical_path_total_equals_makespan_on_all_kernels() {
    for kernel in Kernel::ALL {
        let mut rt = small(kernel).run();
        let records = rt.take_trace();
        let stats = rt.stats();
        let name = kernel.name();

        let tl = Timeline::build(&records, stats.per_node.len());
        assert_eq!(
            tl.makespan,
            rt.makespan(),
            "{name}: trace-derived makespan equals the machine's"
        );

        let cp = critpath::critical_path(&tl);
        assert_eq!(cp.total, rt.makespan(), "{name}: critical path == makespan");
        // Segments are contiguous from 0 to the makespan.
        assert_eq!(cp.segments.first().map(|s| s.start), Some(0), "{name}");
        assert_eq!(
            cp.segments.last().map(|s| s.end),
            Some(rt.makespan()),
            "{name}"
        );
        for w in cp.segments.windows(2) {
            assert_eq!(w[0].end, w[1].start, "{name}: contiguous segments");
        }

        // Per-node breakdowns each tile [0, makespan] as well.
        for b in critpath::node_breakdowns(&tl) {
            assert_eq!(b.total(), rt.makespan(), "{name}: node {} tiles", b.node);
            assert_eq!(
                b.slack,
                b.blocked + b.idle,
                "{name}: slack is the non-busy time"
            );
        }
    }
}

#[test]
fn observer_is_bit_identical_and_sees_the_buffered_stream() {
    let run = |observe: bool| {
        let cfg = small(Kernel::Sor);
        let ids = hem::apps::sor::build();
        let mut rt = hem::apps::make_runtime(
            ids.program.clone(),
            cfg.p,
            hem::CostModel::cm5(),
            hem::ExecMode::Hybrid,
            hem::InterfaceSet::Full,
        );
        rt.enable_trace();
        if observe {
            rt.attach_observer(Box::new(Rollup::new()));
        }
        let inst = hem::apps::sor::setup(
            &mut rt,
            &ids,
            hem::apps::sor::SorParams {
                n: cfg.size,
                block: 4,
                procs: hem::machine::topology::ProcGrid::square(cfg.p),
            },
        );
        hem::apps::sor::run(&mut rt, &inst, 1).unwrap();
        rt
    };

    let mut plain = run(false);
    let mut observed = run(true);
    assert_eq!(plain.makespan(), observed.makespan(), "observer is free");
    let trace_plain = plain.take_trace();
    let trace_observed = observed.take_trace();
    assert!(
        trace_plain == trace_observed,
        "observer never alters the trace"
    );

    // The online rollup saw exactly the records the buffer kept, so the
    // two aggregations agree.
    let any: Box<dyn std::any::Any> = observed.take_observer().expect("attached");
    let online = any.downcast::<Rollup>().expect("a Rollup");
    assert_eq!(online.records, trace_observed.len() as u64);
    let offline = Rollup::from_records(&trace_observed);
    assert_eq!(online.grand_total(), offline.grand_total());
    assert_eq!(online.total_sent(), offline.total_sent());
    assert_eq!(online.per_link(), offline.per_link());
}

#[test]
fn take_observer_flushes_buffering_observers() {
    // Observers may buffer internally to amortize per-record cost; the
    // detach path must call `on_flush` so the handed-back aggregates are
    // complete. This observer only publishes its count on flush.
    struct Buffering {
        pending: u64,
        published: u64,
    }
    impl hem::core::Observer for Buffering {
        fn on_record(&mut self, _rec: &hem::core::trace::TraceRecord) {
            self.pending += 1;
        }
        fn on_flush(&mut self) {
            self.published += self.pending;
            self.pending = 0;
        }
    }

    let mut rt = small(Kernel::Fib).run_with_observer(Box::new(Buffering {
        pending: 0,
        published: 0,
    }));
    let records = rt.take_trace().len() as u64;
    assert!(records > 0, "fib run generated records");
    let any: Box<dyn std::any::Any> = rt.take_observer().expect("attached");
    let obs = any.downcast::<Buffering>().expect("a Buffering");
    assert_eq!(obs.pending, 0, "detach flushed the buffer");
    assert_eq!(obs.published, records, "flush published every record");
}

#[test]
fn truncated_ring_is_counted_exactly_and_surfaced_in_stats() {
    // Reference run: unbounded trace.
    let mut rt = small(Kernel::Em3d).run();
    let full = rt.take_trace().len();
    assert!(full > 100, "em3d produces a real trace ({full} records)");
    assert_eq!(rt.stats().sched.dropped_events, 0);

    // Exactly at capacity: nothing dropped (the boundary).
    let mut cfg = small(Kernel::Em3d);
    cfg.ring = Some(full);
    let mut rt = cfg.run();
    assert_eq!(
        rt.stats().sched.dropped_events,
        0,
        "cap == len drops nothing"
    );
    assert_eq!(rt.take_trace().len(), full);

    // One under: exactly one eviction, surfaced through MachineStats even
    // after the buffer is drained.
    let mut cfg = small(Kernel::Em3d);
    cfg.ring = Some(full - 1);
    let mut rt = cfg.run();
    assert_eq!(rt.stats().sched.dropped_events, 1, "cap == len-1 drops one");
    let kept = rt.take_trace();
    assert_eq!(kept.len(), full - 1);
    assert_eq!(rt.trace_dropped(), 0, "drain-relative counter reset");
    assert_eq!(
        rt.stats().sched.dropped_events,
        1,
        "lifetime count survives the drain"
    );

    // A hard truncation still produces a usable (if partial) rollup, and
    // the report shouts about it.
    let mut cfg = small(Kernel::Em3d);
    cfg.ring = Some(128);
    let mut rt = cfg.run();
    let stats = rt.stats();
    assert_eq!(stats.sched.dropped_events as usize, full - 128);
    let records = rt.take_trace();
    let rollup = Rollup::from_records(&records);
    let report = Report::new("truncated", &rollup, &stats, rt.program(), rt.schemas());
    assert!(report.text().contains("TRUNCATED"));
}

#[test]
fn reliable_transport_traffic_is_attributed_to_ack_frames() {
    // With the reliable transport armed on a fault-free wire, the rollup
    // sees ack sends and the wire-class buckets separate protocol bytes
    // from payload bytes.
    let ids = hem::apps::sor::build();
    let mut rt = hem::apps::make_runtime(
        ids.program.clone(),
        16,
        hem::CostModel::cm5(),
        hem::ExecMode::Hybrid,
        hem::InterfaceSet::Full,
    );
    rt.enable_trace();
    rt.enable_reliable_transport();
    let inst = hem::apps::sor::setup(
        &mut rt,
        &ids,
        hem::apps::sor::SorParams {
            n: 16,
            block: 4,
            procs: hem::machine::topology::ProcGrid::square(16),
        },
    );
    hem::apps::sor::run(&mut rt, &inst, 1).unwrap();

    let records = rt.take_trace();
    let stats = rt.stats();
    let rollup = Rollup::from_records(&records);

    let mut by_cause = [0u64; 7];
    for l in rollup.per_link().values() {
        for (b, m) in by_cause.iter_mut().zip(l.msgs) {
            *b += m;
        }
    }
    let totals = stats.totals();
    assert!(by_cause[2] > 0, "acks flowed");
    assert_eq!(by_cause[2], totals.acks_sent);
    assert_eq!(rollup.total_sent(), stats.net.sent);
    let (data, ack, retx, coll) = rollup.words_by_class();
    assert_eq!(
        (data, ack, retx, coll),
        (
            stats.net.data_words,
            stats.net.ack_words,
            stats.net.retx_words,
            stats.net.coll_words
        )
    );
    assert!(stats.net.ack_words > 0);
    assert_eq!(retx, 0, "fault-free wire never retransmits");

    // Handled acks match too.
    assert_eq!(rollup.handled_by_cause()[2], totals.acks_handled);

    // MsgHandled records never carry the Retransmit cause.
    assert!(records.iter().all(|r| !matches!(
        r.event,
        hem::core::TraceEvent::MsgHandled {
            cause: MsgCause::Retransmit,
            ..
        }
    )));
}
