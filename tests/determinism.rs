//! Scheduler determinism and event-index equivalence.
//!
//! The dispatch loop's contract is a total order on events —
//! `(virtual time, message-before-compute, node id, message seq)` — so a
//! run is a pure function of (program, placement, cost model, mode). These
//! tests pin that down two ways:
//!
//! 1. **Repeatability**: every kernel run twice produces bit-identical
//!    makespans, per-node clocks, per-node counters, and full trace event
//!    sequences.
//! 2. **Implementation equivalence**: the O(log P) event-index dispatcher
//!    and the O(P) linear-scan reference select exactly the same events in
//!    exactly the same order — the scan is the executable specification the
//!    heap is checked against, trace record by trace record.

use hem::analysis::InterfaceSet;
use hem::apps::{em3d, md, sor, sync};
use hem::core::trace::TraceRecord;
use hem::core::{ExecMode, Runtime, SchedImpl};
use hem::machine::cost::CostModel;
use hem::machine::stats::MachineStats;
use hem::machine::topology::ProcGrid;

/// One full run of a kernel at P=16 with tracing on: the complete
/// observable outcome.
struct RunOutcome {
    makespan: u64,
    stats: MachineStats,
    trace: Vec<TraceRecord>,
}

fn run_kernel(kernel: &str, mode: ExecMode, sched: SchedImpl) -> RunOutcome {
    let mut rt = match kernel {
        "sor" => {
            let ids = sor::build();
            let mut rt = Runtime::new(
                ids.program.clone(),
                16,
                CostModel::cm5(),
                mode,
                InterfaceSet::Full,
            )
            .unwrap();
            rt.sched_impl = sched;
            rt.enable_trace();
            let inst = sor::setup(
                &mut rt,
                &ids,
                sor::SorParams {
                    n: 20,
                    block: 2,
                    procs: ProcGrid::square(16),
                },
            );
            sor::run(&mut rt, &inst, 2).unwrap();
            rt
        }
        "em3d" => {
            let ids = em3d::build(4);
            let g = em3d::generate(40, 4, 16, 0.4, 3);
            let mut rt = Runtime::new(
                ids.program.clone(),
                16,
                CostModel::t3d(),
                mode,
                InterfaceSet::Full,
            )
            .unwrap();
            rt.sched_impl = sched;
            rt.enable_trace();
            let inst = em3d::setup(&mut rt, &ids, &g);
            em3d::run(&mut rt, &inst, em3d::Style::Pull, 2).unwrap();
            rt
        }
        "md" => {
            let ids = md::build();
            let sys = md::generate(120, 1.2, 16, md::Layout::Spatial, 5);
            let mut rt = Runtime::new(
                ids.program.clone(),
                16,
                CostModel::cm5(),
                mode,
                InterfaceSet::Full,
            )
            .unwrap();
            rt.sched_impl = sched;
            rt.enable_trace();
            let inst = md::setup(&mut rt, &ids, &sys);
            md::run_iteration(&mut rt, &inst).unwrap();
            rt
        }
        "sync" => {
            let ids = sync::build();
            let mut rt = Runtime::new(
                ids.program.clone(),
                16,
                CostModel::cm5(),
                mode,
                InterfaceSet::Full,
            )
            .unwrap();
            rt.sched_impl = sched;
            rt.enable_trace();
            let inst = sync::setup(&mut rt, &ids, 16);
            rt.call(inst.drivers[0], ids.fan, &[]).unwrap();
            sync::run_rendezvous(&mut rt, &inst).unwrap();
            rt
        }
        other => panic!("unknown kernel {other}"),
    };
    RunOutcome {
        makespan: rt.makespan(),
        stats: rt.stats(),
        trace: rt.take_trace(),
    }
}

const KERNELS: [&str; 4] = ["sor", "em3d", "md", "sync"];

/// Identical runs are bit-identical: makespan, per-node clocks, per-node
/// counters, and the full trace sequence.
#[test]
fn kernels_repeat_bit_identically() {
    for kernel in KERNELS {
        for mode in [ExecMode::Hybrid, ExecMode::ParallelOnly] {
            let a = run_kernel(kernel, mode, SchedImpl::EventIndex);
            let b = run_kernel(kernel, mode, SchedImpl::EventIndex);
            assert_eq!(a.makespan, b.makespan, "{kernel}/{mode}: makespan");
            assert_eq!(
                a.stats.node_time, b.stats.node_time,
                "{kernel}/{mode}: per-node clocks"
            );
            assert_eq!(
                a.stats.per_node, b.stats.per_node,
                "{kernel}/{mode}: per-node counters"
            );
            assert_eq!(
                a.trace.len(),
                b.trace.len(),
                "{kernel}/{mode}: trace length"
            );
            assert_eq!(a.trace, b.trace, "{kernel}/{mode}: trace sequence");
        }
    }
}

/// The event index and the linear scan are the same scheduler: identical
/// traces, clocks, and counters on every kernel in both execution modes.
#[test]
fn event_index_matches_linear_scan() {
    for kernel in KERNELS {
        for mode in [ExecMode::Hybrid, ExecMode::ParallelOnly] {
            let heap = run_kernel(kernel, mode, SchedImpl::EventIndex);
            let scan = run_kernel(kernel, mode, SchedImpl::LinearScan);
            assert_eq!(heap.makespan, scan.makespan, "{kernel}/{mode}: makespan");
            assert_eq!(
                heap.stats.node_time, scan.stats.node_time,
                "{kernel}/{mode}: per-node clocks"
            );
            assert_eq!(
                heap.stats.per_node, scan.stats.per_node,
                "{kernel}/{mode}: per-node counters"
            );
            // First divergence, if any, reported with its index for triage.
            if let Some(i) = (0..heap.trace.len().min(scan.trace.len()))
                .find(|&i| heap.trace[i] != scan.trace[i])
            {
                panic!(
                    "{kernel}/{mode}: traces diverge at record {i}:\n  \
                     event-index: {:?}\n  linear-scan: {:?}",
                    heap.trace[i], scan.trace[i]
                );
            }
            assert_eq!(
                heap.trace.len(),
                scan.trace.len(),
                "{kernel}/{mode}: trace length"
            );
        }
    }
}

/// The scheduler counters are live under the event index and quiet under
/// the scan, and dispatch at least one event per message handled.
#[test]
fn sched_stats_reflect_dispatch() {
    let heap = run_kernel("sor", ExecMode::Hybrid, SchedImpl::EventIndex);
    let scan = run_kernel("sor", ExecMode::Hybrid, SchedImpl::LinearScan);
    assert_eq!(
        heap.stats.sched.events_dispatched, scan.stats.sched.events_dispatched,
        "both implementations dispatch the same event count"
    );
    assert!(heap.stats.sched.events_dispatched > 0);
    assert!(heap.stats.sched.heap_pushes >= heap.stats.sched.events_dispatched);
    assert!(heap.stats.sched.max_heap_depth > 0);
    assert_eq!(
        scan.stats.sched.heap_pushes, 0,
        "scan never touches the heap"
    );
    assert_eq!(scan.stats.sched.max_heap_depth, 0);
}
