//! Blame-segment tiling and cross-executor identity of the
//! observability sections (ISSUE 9 acceptance).
//!
//! Two invariants over the open-system service mix:
//!
//! * **Exact tiling** — for every completed request, on every executor,
//!   the blame segments (queue/exec/wire/lock/retx) sum to exactly
//!   `done.at − arrived.at`, with and without a fault plan. This is the
//!   hard invariant the frontier-cursor decomposition guarantees by
//!   construction; the suite pins it against regressions in either the
//!   decomposition or the tag plumbing.
//! * **Bit-identity** — the blame summary JSON and the series summary
//!   JSON are pure functions of the (executor-invariant) record stream,
//!   so they must be byte-identical across the event-index, linear-scan,
//!   sharded, and speculative executors at threads {1, 2, 4}.
//!
//! A property test drives the same invariants over generated
//! `(seed, drop, dup, jitter)` fault plans.

use hem::apps::service::{self, ServeParams};
use hem::core::{Runtime, SchedImpl};
use hem::machine::arrival::ArrivalDist;
use hem::machine::fault::FaultPlan;
use hem::obs::{Blame, BlameSummary, Fanout, RequestBlame, Series, SeriesSummary};
use hem::{CostModel, ExecMode, InterfaceSet};
use proptest::prelude::*;

const THREADS: [usize; 2] = [2, 4];

fn seeds() -> Vec<u64> {
    match std::env::var("HYBRID_TEST_SEED") {
        Ok(s) => vec![s
            .trim()
            .parse()
            .expect("HYBRID_TEST_SEED must be an unsigned integer")],
        Err(_) => vec![7, 0xC0FFEE],
    }
}

/// Every executor the runtime offers, with the thread counts under test.
fn executors() -> Vec<(String, SchedImpl)> {
    let mut v = vec![
        ("event-index".into(), SchedImpl::EventIndex),
        ("linear-scan".into(), SchedImpl::LinearScan),
    ];
    for t in THREADS {
        v.push((format!("sharded-{t}"), SchedImpl::Sharded { threads: t }));
        v.push((
            format!("speculative-{t}"),
            SchedImpl::Speculative { threads: t },
        ));
    }
    v
}

struct Observed {
    finished: Vec<RequestBlame>,
    blame: BlameSummary,
    series: SeriesSummary,
}

/// Run the service mix at P=8 with a blame tracker and a series
/// collector teed behind the rollup, streaming — no drained trace.
fn run_observed(seed: u64, sched: SchedImpl, plan: Option<&FaultPlan>) -> Observed {
    let ids = service::build();
    let mut rt = Runtime::new(
        ids.program.clone(),
        8,
        CostModel::cm5(),
        ExecMode::Hybrid,
        InterfaceSet::Full,
    )
    .unwrap();
    rt.sched_impl = sched;
    rt.enable_trace();
    if let Some(p) = plan {
        rt.set_fault_plan(p.clone());
    }
    rt.attach_observer(Box::new(
        Fanout::new()
            .with(Box::new(Blame::new()))
            .with(Box::new(Series::new(1_000))),
    ));
    let inst = service::setup(&mut rt, &ids, 16);
    let params = ServeParams {
        horizon: 30_000,
        dist: ArrivalDist::Poisson { mean_gap: 150.0 },
        clients: 4,
        seed,
        deadline: 6_000,
        max_queue: 24,
    };
    service::run_service(&mut rt, &inst, &params).unwrap();
    let any: Box<dyn std::any::Any> = rt.take_observer().expect("fanout attached");
    let fan = any.downcast::<Fanout>().expect("a Fanout");
    let mut parts = fan.into_parts().into_iter();
    let blame: Box<dyn std::any::Any> = parts.next().unwrap();
    let blame = blame.downcast::<Blame>().expect("a Blame");
    let series: Box<dyn std::any::Any> = parts.next().unwrap();
    let series = series.downcast::<Series>().expect("a Series");
    Observed {
        finished: blame.finished().to_vec(),
        blame: blame.summary(0.99, 8),
        series: series.summary(),
    }
}

fn assert_tiling(label: &str, obs: &Observed) {
    assert!(
        !obs.finished.is_empty(),
        "{label}: the mix completed no requests — the invariant would be vacuous"
    );
    for r in &obs.finished {
        let sum: u64 = r.segs.iter().map(|s| s.1).sum();
        assert_eq!(
            sum,
            r.done - r.arrived,
            "{label}: req {} segments {:?} do not tile [{}, {}]",
            r.req,
            r.segs,
            r.arrived,
            r.done
        );
        for &(_, d) in &r.segs {
            assert!(d > 0, "{label}: req {} carries a zero-width segment", r.req);
        }
    }
}

fn fault_plan(seed: u64) -> FaultPlan {
    let mut p = FaultPlan::seeded(seed);
    p.drop_permille = 60;
    p.dup_permille = 20;
    p.jitter_max = 40;
    p
}

#[test]
fn blame_segments_tile_the_sojourn_on_every_executor() {
    for seed in seeds() {
        let plans = [None, Some(fault_plan(seed))];
        for plan in &plans {
            for (name, sched) in executors() {
                let label = format!(
                    "seed{seed}/{name}{}",
                    if plan.is_some() { "/faults" } else { "" }
                );
                let obs = run_observed(seed, sched, plan.as_ref());
                assert_tiling(&label, &obs);
            }
        }
    }
}

#[test]
fn blame_and_series_json_bit_identical_across_executors() {
    for seed in seeds() {
        let plans = [None, Some(fault_plan(seed))];
        for plan in &plans {
            let base = run_observed(seed, SchedImpl::EventIndex, plan.as_ref());
            let (bj, sj) = (base.blame.json(), base.series.json());
            assert!(base.blame.completed > 0, "seed{seed}: empty blame summary");
            assert!(!base.series.buckets.is_empty(), "seed{seed}: empty series");
            for (name, sched) in executors() {
                let label = format!(
                    "seed{seed}/{name}{}",
                    if plan.is_some() { "/faults" } else { "" }
                );
                let other = run_observed(seed, sched, plan.as_ref());
                assert_eq!(bj, other.blame.json(), "{label}: blame JSON");
                assert_eq!(sj, other.series.json(), "{label}: series JSON");
            }
        }
    }
}

#[test]
fn retransmit_penalty_appears_under_heavy_drops() {
    // With a 12% drop rate some completed request's critical chain loses
    // a frame, so the aggregate retx blame must be non-zero — guards the
    // tag plumbing through the reliable transport's retransmit path.
    let mut plan = FaultPlan::seeded(9);
    plan.drop_permille = 120;
    let obs = run_observed(9, SchedImpl::EventIndex, Some(&plan));
    assert_tiling("heavy-drops", &obs);
    assert!(
        obs.blame.totals[4] > 0,
        "no retx blame despite 12% drops: {:?}",
        obs.blame.totals
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Tiling holds for arbitrary fault plans on both parallel executors.
    #[test]
    fn tiling_holds_for_generated_fault_plans(
        seed in 0u64..1_000_000,
        drop in 0u16..150,
        dup in 0u16..80,
        jitter in 0u64..60,
        threads_idx in 0usize..THREADS.len(),
        speculative in any::<bool>(),
    ) {
        let threads = THREADS[threads_idx];
        let mut plan = FaultPlan::seeded(seed);
        plan.drop_permille = drop;
        plan.dup_permille = dup;
        plan.jitter_max = jitter;
        let sched = if speculative {
            SchedImpl::Speculative { threads }
        } else {
            SchedImpl::Sharded { threads }
        };
        let obs = run_observed(seed, sched, Some(&plan));
        assert_tiling(&format!("prop/seed{seed}"), &obs);
    }
}
