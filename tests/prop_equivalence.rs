//! Property-based tests: for *randomly generated* fine-grained concurrent
//! programs, the hybrid execution model, the parallel-only baseline, every
//! interface restriction, and the C-baseline evaluator must all compute
//! the same answer — and runs must be bit-deterministic.
//!
//! The generator produces acyclic call structures (method `i` only calls
//! methods with larger indices, so every program terminates) mixing:
//! local and remote invocations, multi-future touches, and continuation
//! forwarding — i.e. all three sequential schemas arise naturally.

use hem::analysis::InterfaceSet;
use hem::core::{ExecMode, Runtime};
use hem::ir::{BinOp, LocalityHint, MethodId, Program, ProgramBuilder, Value};
use hem::machine::cost::CostModel;
use hem::machine::stats::Counters;
use hem::NodeId;
use proptest::prelude::*;

/// One call site in a generated method.
#[derive(Debug, Clone)]
struct CallDesc {
    /// Callee selector (mapped to a strictly larger method index).
    hop: u8,
    /// Invoke the peer object (possibly remote) instead of self.
    remote: bool,
}

/// One generated method.
#[derive(Debug, Clone)]
struct MethodDesc {
    /// Number of arithmetic scrambles.
    ops: u8,
    /// Call sites.
    calls: Vec<CallDesc>,
    /// Tail-forward instead of replying (needs a successor method).
    forward: bool,
}

fn method_desc() -> impl Strategy<Value = MethodDesc> {
    (
        1u8..4,
        proptest::collection::vec((0u8..4, any::<bool>()), 0..3),
        any::<bool>(),
    )
        .prop_map(|(ops, calls, forward)| MethodDesc {
            ops,
            calls: calls
                .into_iter()
                .map(|(hop, remote)| CallDesc { hop, remote })
                .collect(),
            forward,
        })
}

/// Build a terminating program from descriptors. Method `i` calls only
/// methods `> i`; the last method is a pure leaf.
fn build_program(descs: &[MethodDesc]) -> (Program, MethodId) {
    let k = descs.len();
    let mut pb = ProgramBuilder::new();
    let cls = pb.class("Gen", false);
    let peer = pb.field(cls, "peer");
    let ids: Vec<MethodId> = (0..k + 1)
        .map(|i| pb.declare(cls, &format!("m{i}"), 1))
        .collect();

    // Leaf.
    pb.define(ids[k], |mb| {
        let r = mb.binl(BinOp::Add, mb.arg(0), 1);
        mb.reply(r);
    });

    for (i, d) in descs.iter().enumerate() {
        let callee_of = |hop: u8| ids[(i + 1 + (hop as usize % (k - i))).min(k)];
        pb.define(ids[i], |mb| {
            let acc = mb.local();
            mb.mov(acc, mb.arg(0));
            for _ in 0..d.ops {
                let t = mb.binl(BinOp::Mul, acc, 3);
                mb.bin(acc, BinOp::Add, t, 7);
                // Keep numbers bounded so wrapping never differs by path.
                let m = mb.binl(BinOp::Rem, acc, 1_000_003);
                mb.mov(acc, m);
            }
            let me = mb.self_ref();
            let pv = mb.get_field(peer);
            let mut slots = Vec::new();
            for (ci, c) in d.calls.iter().enumerate() {
                let callee = callee_of(c.hop.wrapping_add(ci as u8));
                let arg = mb.binl(BinOp::Add, acc, ci as i64);
                let s = if c.remote {
                    mb.invoke_into(pv, callee, &[arg.into()])
                } else {
                    mb.invoke_local(me, callee, &[arg.into()])
                };
                slots.push(s);
            }
            mb.touch(&slots);
            for s in slots {
                let v = mb.get_slot(s);
                mb.bin(acc, BinOp::Add, acc, v);
            }
            if d.forward {
                let callee = callee_of(0);
                mb.forward(pv, callee, &[acc.into()], LocalityHint::Unknown);
            } else {
                mb.reply(acc);
            }
        });
    }
    (pb.finish(), ids[0])
}

/// Placement world: objects at caller-chosen nodes, peers around the ring
/// of *objects* (so remote-ness is decided by the placement, not the ring).
fn run_placed(
    program: &Program,
    root: MethodId,
    nodes: u32,
    placement: &[u32],
    mode: ExecMode,
    arg: i64,
) -> (Option<Value>, Counters) {
    let mut rt = Runtime::new(
        program.clone(),
        nodes,
        CostModel::cm5(),
        mode,
        InterfaceSet::Full,
    )
    .expect("generated program validates");
    let objs: Vec<_> = placement
        .iter()
        .map(|&n| rt.alloc_object_by_name("Gen", NodeId(n)))
        .collect();
    let peer = hem::ir::FieldId(0);
    for (i, o) in objs.iter().enumerate() {
        rt.set_field(*o, peer, Value::Obj(objs[(i + 1) % objs.len()]));
    }
    let r = rt
        .call(objs[0], root, &[Value::Int(arg)])
        .expect("no traps");
    assert_eq!(rt.live_contexts(), 0, "context leak under {mode}");
    (r, rt.stats().totals())
}

/// Ring world: one object per node, peers pointing around the ring.
fn run(
    program: &Program,
    root: MethodId,
    nodes: u32,
    mode: ExecMode,
    ifaces: InterfaceSet,
    arg: i64,
) -> (Option<Value>, u64, Counters) {
    let mut rt = Runtime::new(program.clone(), nodes, CostModel::cm5(), mode, ifaces)
        .expect("generated program validates");
    let objs: Vec<_> = (0..nodes)
        .map(|n| rt.alloc_object_by_name("Gen", NodeId(n)))
        .collect();
    let peer = hem::ir::FieldId(0);
    for (i, o) in objs.iter().enumerate() {
        rt.set_field(*o, peer, Value::Obj(objs[(i + 1) % objs.len()]));
    }
    let r = rt
        .call(objs[0], root, &[Value::Int(arg)])
        .expect("no traps");
    assert_eq!(rt.live_contexts(), 0, "context leak under {mode}");
    (r, rt.makespan(), rt.stats().totals())
}

/// A driver over a cell population with three group operations: the
/// modeled acked multicast of `bump(1)`, the hand-rolled join-loop
/// fan-out it replaced, and a modeled `reduce` of `read` under `Add` —
/// the fixtures for the collective equivalence properties below.
struct FanWorld {
    program: Program,
    fan_mcast: MethodId,
    fan_loop: MethodId,
    sum: MethodId,
    value: hem::ir::FieldId,
    cells: hem::ir::FieldId,
}

fn build_fan_world() -> FanWorld {
    let mut pb = ProgramBuilder::new();
    let cell = pb.class("Cell", false);
    let value = pb.field(cell, "value");
    let read = pb.method(cell, "read", 0, |mb| {
        let v = mb.get_field(value);
        mb.reply(v);
    });
    let bump = pb.method(cell, "bump", 1, |mb| {
        let v = mb.get_field(value);
        let nv = mb.binl(BinOp::Add, v, mb.arg(0));
        mb.set_field(value, nv);
        mb.reply(nv);
    });
    let driver = pb.class("Driver", false);
    let cells = pb.array_field(driver, "cells");
    let fan_mcast = pb.method(driver, "fan_mcast", 0, |mb| {
        let s = mb.multicast_into(cells, bump, &[1i64.into()]);
        mb.touch(&[s]);
        mb.reply_nil();
    });
    let fan_loop = pb.method(driver, "fan_loop", 0, |mb| {
        let n = mb.arr_len(cells);
        let join = mb.slot();
        mb.join_init(join, n);
        mb.for_range(0i64, n, |mb, k| {
            let c = mb.get_elem(cells, k);
            mb.invoke(Some(join), c, bump, &[1i64.into()], LocalityHint::Unknown);
        });
        mb.touch(&[join]);
        mb.reply_nil();
    });
    let sum = pb.method(driver, "sum", 0, |mb| {
        let s = mb.reduce(cells, read, &[], BinOp::Add);
        let v = mb.touch_get(s);
        mb.reply(v);
    });
    FanWorld {
        program: pb.finish(),
        fan_mcast,
        fan_loop,
        sum,
        value,
        cells,
    }
}

/// Place one cell per `(node, value)` pair plus a driver on node 0, all
/// on a 4-node machine with the given cost model and fault plan.
fn fan_setup(
    w: &FanWorld,
    cells: &[(u32, i64)],
    cost: CostModel,
    plan: Option<hem::machine::fault::FaultPlan>,
) -> (Runtime, hem::ir::ObjRef, Vec<hem::ir::ObjRef>) {
    let mut rt = Runtime::new(
        w.program.clone(),
        4,
        cost,
        ExecMode::Hybrid,
        InterfaceSet::Full,
    )
    .unwrap();
    if let Some(p) = plan {
        rt.set_fault_plan(p);
    }
    let refs: Vec<_> = cells
        .iter()
        .map(|&(n, v)| {
            let c = rt.alloc_object_by_name("Cell", NodeId(n % 4));
            rt.set_field(c, w.value, Value::Int(v));
            c
        })
        .collect();
    let d = rt.alloc_object_by_name("Driver", NodeId(0));
    rt.set_array(d, w.cells, refs.iter().map(|c| Value::Obj(*c)).collect());
    (rt, d, refs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_execution_regimes_agree(
        descs in proptest::collection::vec(method_desc(), 1..6),
        nodes in 1u32..4,
        arg in 0i64..1000,
    ) {
        let (program, root) = build_program(&descs);

        // Oracle: the C-baseline evaluator.
        let mut rt = Runtime::new(
            program.clone(), nodes, CostModel::cm5(),
            ExecMode::Hybrid, InterfaceSet::Full,
        ).unwrap();
        let objs: Vec<_> = (0..nodes)
            .map(|n| rt.alloc_object_by_name("Gen", NodeId(n)))
            .collect();
        let peer = hem::ir::FieldId(0);
        for (i, o) in objs.iter().enumerate() {
            rt.set_field(*o, peer, Value::Obj(objs[(i + 1) % objs.len()]));
        }
        let (c_val, _) = rt.call_c_baseline(objs[0], root, &[Value::Int(arg)]).unwrap();

        for (mode, ifaces) in [
            (ExecMode::Hybrid, InterfaceSet::Full),
            (ExecMode::Hybrid, InterfaceSet::MbCp),
            (ExecMode::Hybrid, InterfaceSet::CpOnly),
            (ExecMode::ParallelOnly, InterfaceSet::Full),
        ] {
            let (v, _, t) = run(&program, root, nodes, mode, ifaces, arg);
            prop_assert_eq!(v, c_val, "{} {:?} disagrees with C oracle", mode, ifaces);
            prop_assert_eq!(t.ctx_alloc, t.ctx_free, "context conservation");
            prop_assert_eq!(t.msgs_sent + t.replies_sent, t.msgs_handled,
                "message conservation");
        }
    }

    #[test]
    fn runs_are_bit_deterministic(
        descs in proptest::collection::vec(method_desc(), 1..5),
        nodes in 1u32..4,
    ) {
        let (program, root) = build_program(&descs);
        let a = run(&program, root, nodes, ExecMode::Hybrid, InterfaceSet::Full, 5);
        let b = run(&program, root, nodes, ExecMode::Hybrid, InterfaceSet::Full, 5);
        prop_assert_eq!(a.0, b.0);
        prop_assert_eq!(a.1, b.1, "identical makespans");
        prop_assert_eq!(a.2, b.2, "identical counters");
    }

    #[test]
    fn random_placements_hybrid_matches_parallel_only(
        descs in proptest::collection::vec(method_desc(), 1..5),
        placement in proptest::collection::vec(0u32..4, 2..7),
        arg in 0i64..1000,
    ) {
        // Data layout is an input to the execution model, not part of its
        // semantics: wherever the objects land, the hybrid model and the
        // parallel-only baseline must compute the same answer.
        let (program, root) = build_program(&descs);
        let (hv, ht) = run_placed(&program, root, 4, &placement, ExecMode::Hybrid, arg);
        let (pv, pt) = run_placed(&program, root, 4, &placement, ExecMode::ParallelOnly, arg);
        prop_assert_eq!(hv, pv, "placement {:?}: modes disagree", placement);
        for t in [&ht, &pt] {
            prop_assert_eq!(t.ctx_alloc, t.ctx_free, "context conservation");
            prop_assert_eq!(t.msgs_sent + t.replies_sent, t.msgs_handled,
                "message conservation");
        }
        // Placement never changes the answer either: all objects on one
        // node is the degenerate reference layout.
        let home = vec![0u32; placement.len()];
        let (lv, _) = run_placed(&program, root, 4, &home, ExecMode::Hybrid, arg);
        prop_assert_eq!(hv, lv, "placement {:?} changed the result", placement);
    }

    #[test]
    fn multicast_matches_hand_rolled_fanout(
        cells in proptest::collection::vec((0u32..4, -50i64..50), 1..9),
        reps in 1usize..3,
    ) {
        // Under unit hop costs the modeled multicast is semantically a
        // compressed spelling of the join-loop fan-out: same member
        // invocations (each cell bumped once per round), same final
        // state — only the wire accounting moves from request/reply
        // buckets to collective legs.
        let w = build_fan_world();
        let n = cells.len() as u64;
        let (mut a, da, ca) = fan_setup(&w, &cells, CostModel::unit(), None);
        let (mut b, db, cb) = fan_setup(&w, &cells, CostModel::unit(), None);
        for _ in 0..reps {
            prop_assert_eq!(a.call(da, w.fan_mcast, &[]).expect("no traps"),
                Some(Value::Nil));
            prop_assert_eq!(b.call(db, w.fan_loop, &[]).expect("no traps"),
                Some(Value::Nil));
        }
        for (x, y) in ca.iter().zip(&cb) {
            prop_assert_eq!(
                a.get_field(*x, w.value), b.get_field(*y, w.value),
                "cell state diverged between multicast and loop fan-out"
            );
        }
        let (ta, tb) = (a.stats().totals(), b.stats().totals());
        let r = reps as u64;
        // Multicast run: one collective per round, n acked down legs and
        // n up legs each; nothing rides the request/reply buckets.
        prop_assert_eq!(ta.coll_initiated, r);
        prop_assert_eq!(ta.coll_legs_sent, 2 * n * r);
        prop_assert_eq!(ta.msgs_sent - ta.coll_legs_sent, 0);
        // Loop run: point-to-point requests for the remote members only —
        // the hybrid model invokes same-node cells on the stack, while
        // the collective sends every member (including self) a leg.
        let remote = cells.iter().filter(|&&(node, _)| node % 4 != 0).count() as u64;
        prop_assert_eq!(tb.coll_initiated, 0);
        prop_assert_eq!(tb.msgs_sent, remote * r);
        prop_assert_eq!(tb.replies_sent, remote * r);
    }

    #[test]
    fn reduce_is_arrival_order_independent(
        cells in proptest::collection::vec((0u32..4, -50i64..50), 1..9),
        seed in 1u64..u64::MAX,
        jitter in 1u64..120,
    ) {
        // Contributions fold in tree-slot order, never arrival order: a
        // jitter-only fault plan (no loss, no duplication) arbitrarily
        // reorders the up legs yet the folded sum must equal the plain
        // left-to-right sum of the values.
        let w = build_fan_world();
        let expect: i64 = cells.iter().map(|&(_, v)| v).sum();
        let (mut a, da, _) = fan_setup(&w, &cells, CostModel::cm5(), None);
        prop_assert_eq!(a.call(da, w.sum, &[]).expect("no traps"),
            Some(Value::Int(expect)));
        let mut plan = hem::machine::fault::FaultPlan::seeded(seed);
        plan.jitter_max = jitter;
        let (mut b, db, _) = fan_setup(&w, &cells, CostModel::cm5(), Some(plan));
        prop_assert_eq!(b.call(db, w.sum, &[]).expect("no traps"),
            Some(Value::Int(expect)));
        prop_assert!(b.stats().totals().coll_contribs > 0);
    }

    #[test]
    fn single_node_hybrid_stays_on_stack(
        descs in proptest::collection::vec(method_desc(), 1..5),
        arg in 0i64..100,
    ) {
        // On one node every "remote" target is actually local; programs
        // without forwarding gone wrong must finish without any messages.
        let (program, root) = build_program(&descs);
        let (v, _, t) = run(&program, root, 1, ExecMode::Hybrid, InterfaceSet::Full, arg);
        prop_assert!(v.is_some());
        prop_assert_eq!(t.msgs_sent, 0);
        prop_assert_eq!(t.remote_invokes, 0);
    }
}
