//! Profile-guided shard maps under skewed placements.
//!
//! The sharded executor's default partition is a contiguous equal slice
//! of the node space. A placement whose hot objects all sit in one
//! contiguous slice then lands every busy node in one shard and idles
//! the rest of the pool. The profile-guided map
//! (`Runtime::set_shard_weights` fed by `Rollup::node_busy_weights`)
//! re-cuts the boundaries by cumulative busy time. These tests pin both
//! halves of that contract on a deliberately skewed kernel:
//!
//! * the weighted map is **observationally invisible** — traces,
//!   makespan, `MachineStats`, and the rendered rollup report stay
//!   bit-identical to the single-threaded event index at threads {2, 4},
//!   with and without weights, with and without a fault plan;
//! * the weighted map actually **splits the hot slice** — the hottest
//!   shard's busy share drops strictly below the equal-slice map's, and
//!   the hot nodes no longer share one shard;
//! * the persistent pool survives `run_until` chunks (serve mode) with
//!   zero `Runtime` moves and zero coordinator round-trips.

use hem::analysis::InterfaceSet;
use hem::core::trace::TraceRecord;
use hem::core::{ExecMode, Runtime, SchedImpl};
use hem::ir::{BinOp, MethodId, ObjRef, ProgramBuilder, Value};
use hem::machine::cost::CostModel;
use hem::machine::fault::FaultPlan;
use hem::machine::stats::MachineStats;
use hem::machine::NodeId;
use hem::obs::{Report, Rollup};
use hem_bench::serve::ServeConfig;

const P: u32 = 8;
/// The hot contiguous slice: the first two nodes host all the heavy
/// objects, so the equal-slice map at 2 threads puts every hot node in
/// shard 0.
const HOT: u32 = 2;

/// Build the skewed world: a pair of heavy objects bouncing on nodes
/// {0, 1} and a cold ring over nodes {2..P} that barely ticks.
fn skewed_runtime() -> (Runtime, SkewedIds) {
    let mut pb = ProgramBuilder::new();
    let c = pb.class("C", false);
    let peer = pb.field(c, "peer");
    let bounce = pb.declare(c, "bounce", 1);
    pb.define(bounce, |mb| {
        let n = mb.arg(0);
        let done = mb.binl(BinOp::Lt, n, 1);
        mb.if_else(
            done,
            |mb| mb.reply(n),
            |mb| {
                let pr = mb.get_field(peer);
                let n1 = mb.binl(BinOp::Sub, n, 1);
                let s = mb.invoke_into(pr, bounce, &[n1.into()]);
                let v = mb.touch_get(s);
                let r = mb.binl(BinOp::Add, v, n);
                mb.reply(r);
            },
        );
    });
    let mut rt = Runtime::new(
        pb.finish(),
        P,
        CostModel::cm5(),
        ExecMode::Hybrid,
        InterfaceSet::Full,
    )
    .expect("valid skewed program");
    // Hot pair on the contiguous slice [0, HOT).
    let hot: Vec<ObjRef> = (0..HOT)
        .map(|i| rt.alloc_object_by_name("C", NodeId(i)))
        .collect();
    for (i, &o) in hot.iter().enumerate() {
        rt.set_field(o, peer, Value::Obj(hot[(i + 1) % hot.len()]));
    }
    // Cold ring over the remaining nodes.
    let cold: Vec<ObjRef> = (HOT..P)
        .map(|i| rt.alloc_object_by_name("C", NodeId(i)))
        .collect();
    for (i, &o) in cold.iter().enumerate() {
        rt.set_field(o, peer, Value::Obj(cold[(i + 1) % cold.len()]));
    }
    (
        rt,
        SkewedIds {
            bounce,
            hot_root: hot[0],
            cold_root: cold[0],
        },
    )
}

struct SkewedIds {
    bounce: MethodId,
    hot_root: ObjRef,
    cold_root: ObjRef,
}

struct Outcome {
    makespan: u64,
    stats: MachineStats,
    trace: Vec<TraceRecord>,
    report: String,
}

/// Run the skewed kernel: a token lap around the cold ring, then the
/// heavy hot-pair exchange (two executor entries, so the pool also sees
/// a reuse).
fn run_skewed(
    sched: SchedImpl,
    weights: Option<Vec<u64>>,
    plan: Option<&FaultPlan>,
) -> (Outcome, Runtime) {
    let (mut rt, ids) = skewed_runtime();
    rt.sched_impl = sched;
    rt.enable_trace();
    rt.attach_observer(Box::new(Rollup::new()));
    if let Some(p) = plan {
        rt.set_fault_plan(p.clone());
    }
    rt.set_shard_weights(weights);
    rt.call(ids.cold_root, ids.bounce, &[Value::Int(6)])
        .expect("cold lap");
    rt.call(ids.hot_root, ids.bounce, &[Value::Int(120)])
        .expect("hot exchange");
    let stats = rt.stats();
    let any: Box<dyn std::any::Any> = rt.take_observer().expect("rollup attached");
    let rollup = any.downcast::<Rollup>().expect("a Rollup");
    let report = Report::new("skewed", &rollup, &stats, rt.program(), rt.schemas()).text();
    let out = Outcome {
        makespan: rt.makespan(),
        stats,
        trace: rt.take_trace(),
        report,
    };
    (out, rt)
}

/// The single-threaded busy-time profile of the skewed kernel.
fn pilot_weights() -> Vec<u64> {
    let (mut rt, ids) = skewed_runtime();
    rt.enable_trace_ring(64); // rollup streams past the ring
    rt.attach_observer(Box::new(Rollup::new()));
    rt.call(ids.cold_root, ids.bounce, &[Value::Int(6)])
        .expect("cold lap");
    rt.call(ids.hot_root, ids.bounce, &[Value::Int(120)])
        .expect("hot exchange");
    let any: Box<dyn std::any::Any> = rt.take_observer().expect("rollup attached");
    let rollup = any.downcast::<Rollup>().expect("a Rollup");
    rollup.node_busy_weights(P)
}

fn assert_bit_identical(label: &str, base: &Outcome, other: &Outcome) {
    assert_eq!(base.makespan, other.makespan, "{label}: makespan");
    assert_eq!(
        base.stats.node_time, other.stats.node_time,
        "{label}: per-node clocks"
    );
    assert_eq!(
        base.stats.per_node, other.stats.per_node,
        "{label}: per-node counters"
    );
    assert_eq!(base.stats.net, other.stats.net, "{label}: net stats");
    if let Some(i) =
        (0..base.trace.len().min(other.trace.len())).find(|&i| base.trace[i] != other.trace[i])
    {
        panic!(
            "{label}: traces diverge at record {i}:\n  base:  {:?}\n  other: {:?}",
            base.trace[i], other.trace[i]
        );
    }
    assert_eq!(base.trace.len(), other.trace.len(), "{label}: trace length");
    assert_eq!(
        base.stats.sched.events_dispatched, other.stats.sched.events_dispatched,
        "{label}: events dispatched"
    );
    assert_eq!(base.report, other.report, "{label}: rollup report text");
}

/// (a) Bit-identity on the skewed placement, equal-slice and
/// profile-guided maps alike, with and without a fault plan.
#[test]
fn skewed_placement_stays_bit_identical() {
    let weights = pilot_weights();
    let plans = [None, Some(FaultPlan::seeded(0xC0FFEE))];
    for plan in &plans {
        let (base, _) = run_skewed(SchedImpl::EventIndex, None, plan.as_ref());
        for threads in [2usize, 4] {
            let label = |map: &str| {
                format!(
                    "skewed/{map}/threads{threads}{}",
                    if plan.is_some() { "/faulty" } else { "" }
                )
            };
            let (even, _) = run_skewed(SchedImpl::Sharded { threads }, None, plan.as_ref());
            assert_bit_identical(&label("even"), &base, &even);
            let (prof, _) = run_skewed(
                SchedImpl::Sharded { threads },
                Some(weights.clone()),
                plan.as_ref(),
            );
            assert_bit_identical(&label("profile"), &base, &prof);
        }
    }
}

/// (b) The profile-guided map splits the hot slice: the equal-slice map
/// concentrates the whole busy profile in one shard, the weighted cut
/// strictly lowers the hottest shard's busy share.
#[test]
fn profile_guided_map_splits_the_hot_slice() {
    let weights = pilot_weights();
    let total: u64 = weights.iter().sum();
    let hot: u64 = weights[..HOT as usize].iter().sum();
    assert!(
        hot * 10 > total * 9,
        "skew premise: hot slice carries >90% of busy time ({hot}/{total})"
    );

    let shard_busy = |owner: &[usize], threads: usize| -> Vec<u64> {
        let mut busy = vec![0u64; threads];
        for (i, &s) in owner.iter().enumerate() {
            busy[s] += weights[i];
        }
        busy
    };

    let (_, rt_even) = run_skewed(SchedImpl::Sharded { threads: 2 }, None, None);
    let even = rt_even.shard_plan(2);
    assert_eq!(
        even[0], even[1],
        "equal slices put the whole hot pair in one shard"
    );
    let even_peak = *shard_busy(&even, 2).iter().max().unwrap();

    let (_, rt_prof) = run_skewed(
        SchedImpl::Sharded { threads: 2 },
        Some(weights.clone()),
        None,
    );
    let prof = rt_prof.shard_plan(2);
    assert!(
        prof.windows(2).all(|ab| ab[0] <= ab[1]),
        "weighted map stays contiguous: {prof:?}"
    );
    for s in 0..2 {
        assert!(prof.contains(&s), "shard {s} nonempty: {prof:?}");
    }
    assert_ne!(
        prof[0], prof[1],
        "profile-guided cut splits the hot slice: {prof:?}"
    );
    let prof_peak = *shard_busy(&prof, 2).iter().max().unwrap();
    assert!(
        prof_peak < even_peak,
        "hottest shard's busy time drops: {prof_peak} !< {even_peak}"
    );
    // Spread bound: with the hot pair split, no shard carries more than
    // ~¾ of the busy total (the two hot nodes are near-equal halves).
    assert!(
        prof_peak * 4 <= total * 3,
        "per-shard busy spread bound: {prof_peak} > 3/4 of {total}"
    );
}

/// (c) Serve mode: one pool serves every `run_until` chunk of the
/// arrival-driven loop — zero `Runtime` moves, zero coordinator
/// round-trips, and a pool reuse per subsequent chunk.
#[test]
fn serve_mode_reuses_one_pool_across_chunks() {
    let mut cfg = ServeConfig::new();
    cfg.p = 8;
    cfg.backends = 8;
    cfg.horizon = 30_000;
    cfg.warmup = 2_000;
    cfg.threads = 2;
    let (rt, out) = cfg.run();
    let completed =
        out.count(|r| matches!(r.disposition, hem::apps::service::Disposition::Completed(_)));
    assert!(completed > 1, "service did work ({completed} completions)");
    let st = rt.stats();
    assert!(st.sched.windows > 0, "windowed path exercised");
    assert_eq!(st.sched.runtime_moves, 0, "zero Runtime moves");
    assert_eq!(
        st.sched.coord_roundtrips, 0,
        "zero coordinator channel round-trips"
    );
    assert!(
        st.sched.pool_reuses > 0,
        "later chunks reused the pinned pool (got {} reuses over {} windows)",
        st.sched.pool_reuses,
        st.sched.windows
    );
}
