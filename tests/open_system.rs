//! Open-system service mode: determinism, resumability, and
//! latency-quantile correctness.
//!
//! The open-system contract extends the closed-system one: for the same
//! `(seed, rate, horizon)` the run — arrival times, admission decisions,
//! injected requests, traces, machine stats, rollup report with its
//! service section — is a pure function of the configuration, identical
//! across the event-index, linear-scan, sharded, and speculative
//! (Time-Warp) executors at every thread count, with or without a fault
//! plan. On top of that:
//!
//! * `run_until` is resumable: stepping to a horizon in many chunks is
//!   bit-identical to reaching it in one call;
//! * the reported p50/p95/p99 agree with a brute-force sorted-sample
//!   nearest-rank computation over the raw per-request latencies (same
//!   log2 bucket by construction; exact at the top sample).
//!
//! Seeds come from `HYBRID_TEST_SEED` when set, else a pinned trio.

use hem::apps::service::{self, Disposition, ServeParams};
use hem::core::trace::TraceRecord;
use hem::core::{Runtime, SchedImpl};
use hem::machine::arrival::ArrivalDist;
use hem::machine::fault::FaultPlan;
use hem::machine::stats::MachineStats;
use hem::obs::{Report, Rollup};
use hem::{CostModel, ExecMode, InterfaceSet, Value};
use hem_bench::serve::ServeConfig;

struct Outcome {
    makespan: u64,
    stats: MachineStats,
    trace: Vec<TraceRecord>,
    report: String,
    dispositions: Vec<(u64, u64, u32, u8, service::Disposition)>,
}

const THREADS: [usize; 2] = [2, 4];

fn seeds() -> Vec<u64> {
    match std::env::var("HYBRID_TEST_SEED") {
        Ok(s) => vec![s
            .trim()
            .parse()
            .expect("HYBRID_TEST_SEED must be an unsigned integer")],
        Err(_) => vec![1, 0xDEAD_BEEF, 3_141_592_653],
    }
}

/// Run the service mix at P=8 to a 30k-cycle horizon with admission
/// control engaged (so shed paths are exercised too).
fn run_service_mix(seed: u64, sched: SchedImpl, plan: Option<&FaultPlan>) -> Outcome {
    let ids = service::build();
    let mut rt = Runtime::new(
        ids.program.clone(),
        8,
        CostModel::cm5(),
        ExecMode::Hybrid,
        InterfaceSet::Full,
    )
    .unwrap();
    rt.sched_impl = sched;
    rt.enable_trace();
    rt.attach_observer(Box::new(Rollup::new()));
    if let Some(p) = plan {
        rt.set_fault_plan(p.clone());
    }
    let inst = service::setup(&mut rt, &ids, 16);
    let params = ServeParams {
        horizon: 30_000,
        dist: ArrivalDist::Poisson { mean_gap: 150.0 },
        clients: 4,
        seed,
        deadline: 6_000,
        max_queue: 24,
    };
    let out = service::run_service(&mut rt, &inst, &params).unwrap();
    let stats = rt.stats();
    let any: Box<dyn std::any::Any> = rt.take_observer().expect("rollup attached");
    let rollup = any.downcast::<Rollup>().expect("a Rollup");
    let report = Report::new("service-mix", &rollup, &stats, rt.program(), rt.schemas()).text();
    Outcome {
        makespan: rt.makespan(),
        stats,
        trace: rt.take_trace(),
        report,
        dispositions: out
            .records
            .iter()
            .map(|r| (r.req, r.arrived, r.node.0, r.kind, r.disposition))
            .collect(),
    }
}

fn assert_bit_identical(label: &str, base: &Outcome, other: &Outcome) {
    assert_eq!(base.makespan, other.makespan, "{label}: makespan");
    assert_eq!(
        base.stats.node_time, other.stats.node_time,
        "{label}: per-node clocks"
    );
    assert_eq!(
        base.stats.per_node, other.stats.per_node,
        "{label}: per-node counters"
    );
    assert_eq!(base.stats.net, other.stats.net, "{label}: net/fault stats");
    if let Some(i) =
        (0..base.trace.len().min(other.trace.len())).find(|&i| base.trace[i] != other.trace[i])
    {
        panic!(
            "{label}: traces diverge at record {i}:\n  base:  {:?}\n  other: {:?}",
            base.trace[i], other.trace[i]
        );
    }
    assert_eq!(base.trace.len(), other.trace.len(), "{label}: trace length");
    assert_eq!(
        base.dispositions, other.dispositions,
        "{label}: request dispositions"
    );
    assert_eq!(base.report, other.report, "{label}: rollup report text");
}

/// Fault-free matrix: linear scan and sharded (2, 4 threads) against the
/// event index, every pinned seed.
#[test]
fn open_system_is_bit_identical_across_executors() {
    for seed in seeds() {
        let base = run_service_mix(seed, SchedImpl::EventIndex, None);
        assert!(
            base.dispositions
                .iter()
                .any(|d| matches!(d.4, Disposition::Completed(_))),
            "seed {seed}: some requests complete"
        );
        let lin = run_service_mix(seed, SchedImpl::LinearScan, None);
        assert_bit_identical(&format!("seed{seed}/linear"), &base, &lin);
        for threads in THREADS {
            let sh = run_service_mix(seed, SchedImpl::Sharded { threads }, None);
            assert_bit_identical(&format!("seed{seed}/threads{threads}"), &base, &sh);
            let sp = run_service_mix(seed, SchedImpl::Speculative { threads }, None);
            assert_bit_identical(&format!("seed{seed}/speculative{threads}"), &base, &sp);
        }
    }
}

/// The same matrix with a seeded fault plan (loss, duplication, jitter):
/// retransmissions shift completions, but identically everywhere.
#[test]
fn open_system_is_bit_identical_under_faults() {
    for seed in seeds() {
        let mut plan = FaultPlan::seeded(seed);
        plan.drop_permille = 20;
        plan.dup_permille = 20;
        plan.jitter_max = 80;
        let base = run_service_mix(seed, SchedImpl::EventIndex, Some(&plan));
        let lin = run_service_mix(seed, SchedImpl::LinearScan, Some(&plan));
        assert_bit_identical(&format!("seed{seed}/faulty/linear"), &base, &lin);
        for threads in THREADS {
            let sh = run_service_mix(seed, SchedImpl::Sharded { threads }, Some(&plan));
            assert_bit_identical(&format!("seed{seed}/faulty/threads{threads}"), &base, &sh);
            let sp = run_service_mix(seed, SchedImpl::Speculative { threads }, Some(&plan));
            assert_bit_identical(
                &format!("seed{seed}/faulty/speculative{threads}"),
                &base,
                &sp,
            );
        }
    }
}

/// `run_until` is resumable: many small horizons compose to the same
/// state as one big one, on every executor.
#[test]
fn run_until_composes_across_chunked_horizons() {
    let drive = |sched: SchedImpl, chunks: &[u64]| {
        let ids = service::build();
        let mut rt = Runtime::new(
            ids.program.clone(),
            4,
            CostModel::cm5(),
            ExecMode::Hybrid,
            InterfaceSet::Full,
        )
        .unwrap();
        rt.sched_impl = sched;
        rt.enable_trace();
        let inst = service::setup(&mut rt, &ids, 8);
        for (i, at) in [100u64, 230, 360, 520].iter().enumerate() {
            let fe = inst.frontends[i % inst.frontends.len()];
            rt.inject_request(*at, i as u64, fe, inst.ids.lookup, &[Value::Int(i as i64)]);
        }
        for h in chunks {
            rt.run_until(*h).unwrap();
        }
        let completions = rt.take_completed_requests();
        (rt.stats(), rt.take_trace(), completions)
    };
    for sched in [
        SchedImpl::EventIndex,
        SchedImpl::LinearScan,
        SchedImpl::Sharded { threads: 2 },
        SchedImpl::Speculative { threads: 2 },
    ] {
        let whole = drive(sched, &[20_000]);
        let chunked = drive(sched, &[150, 151, 400, 2_000, 2_001, 20_000]);
        assert_eq!(whole.0.node_time, chunked.0.node_time, "{sched:?}: clocks");
        assert_eq!(whole.1, chunked.1, "{sched:?}: traces");
        assert_eq!(whole.2, chunked.2, "{sched:?}: completions");
        assert_eq!(whole.2.len(), 4, "{sched:?}: all four requests completed");
    }
}

/// A bounded run is an exact event-set prefix of the unbounded run: the
/// horizon trace is a prefix of the quiescence trace, and resuming from
/// the horizon reaches the quiescent state bit-identically.
#[test]
fn horizon_trace_is_a_prefix_of_quiescence() {
    let build = || {
        let ids = service::build();
        let mut rt = Runtime::new(
            ids.program.clone(),
            4,
            CostModel::cm5(),
            ExecMode::Hybrid,
            InterfaceSet::Full,
        )
        .unwrap();
        rt.enable_trace();
        let inst = service::setup(&mut rt, &ids, 8);
        for (i, at) in [100u64, 230, 360, 520].iter().enumerate() {
            let fe = inst.frontends[i % inst.frontends.len()];
            rt.inject_request(*at, i as u64, fe, inst.ids.fanout, &[]);
        }
        rt
    };
    let mut unbounded = build();
    unbounded.run_to_quiescence().unwrap();
    let full = unbounded.take_trace();

    let mut bounded = build();
    bounded.run_until(700).unwrap();
    let prefix = bounded.take_trace();
    assert!(!prefix.is_empty() && prefix.len() < full.len());
    assert_eq!(
        &full[..prefix.len()],
        &prefix[..],
        "horizon run is a prefix"
    );

    bounded.run_to_quiescence().unwrap();
    let rest = bounded.take_trace();
    assert_eq!(&full[prefix.len()..], &rest[..], "resume completes the run");
    assert_eq!(unbounded.makespan(), bounded.makespan());
}

/// Brute-force nearest-rank quantile over raw samples.
fn brute_quantile(sorted: &[u64], p: f64) -> u64 {
    assert!(!sorted.is_empty());
    let n = sorted.len() as u64;
    let r = ((p * n as f64).ceil() as u64).clamp(1, n);
    sorted[(r - 1) as usize]
}

fn log2_bucket(v: u64) -> u32 {
    64 - v.leading_zeros()
}

/// The served JSON report's p50/p95/p99 agree with a brute-force
/// computation over the raw per-request latencies: the same nearest-rank
/// sample is selected, so both land in the same log2 bucket (and the
/// top-rank quantile is exact).
#[test]
fn serve_quantiles_match_brute_force() {
    for seed in seeds() {
        let mut cfg = ServeConfig::new();
        cfg.p = 8;
        cfg.backends = 16;
        cfg.horizon = 50_000;
        cfg.warmup = 5_000;
        cfg.dist = ArrivalDist::Poisson { mean_gap: 250.0 };
        cfg.clients = 3;
        cfg.seed = seed;
        let (_rt, out) = cfg.run();
        let summary = cfg.summary(&out);

        let mut samples: Vec<u64> = out
            .latencies()
            .iter()
            .filter(|(arrived, _)| *arrived >= cfg.warmup)
            .map(|(_, lat)| *lat)
            .collect();
        samples.sort_unstable();
        assert!(
            samples.len() > 30,
            "seed {seed}: want a real sample ({} kept)",
            samples.len()
        );
        assert_eq!(summary.latency.count(), samples.len() as u64);
        assert_eq!(summary.latency.max(), *samples.last().unwrap());

        for p in [0.50, 0.95, 0.99] {
            let hist_q = summary.latency.quantile(p);
            let brute_q = brute_quantile(&samples, p);
            assert_eq!(
                log2_bucket(hist_q),
                log2_bucket(brute_q),
                "seed {seed} p{p}: hist {hist_q} vs brute {brute_q}"
            );
        }
        assert_eq!(
            summary.latency.quantile(1.0),
            *samples.last().unwrap(),
            "p100 is exact"
        );
    }
}

/// The arrival process itself is executor-independent: two ServeConfig
/// runs at different thread counts produce byte-identical JSON reports,
/// including the service section.
#[test]
fn serve_reports_are_identical_across_thread_counts() {
    let render = |threads: usize| {
        let mut cfg = ServeConfig::new();
        cfg.p = 8;
        cfg.horizon = 30_000;
        cfg.warmup = 3_000;
        cfg.dist = ArrivalDist::Bursty {
            mean_gap: 300.0,
            burst_len: 8,
        };
        cfg.seed = 271_828;
        cfg.deadline = 8_000;
        cfg.threads = threads;
        let (mut rt, out) = cfg.run();
        let stats = rt.stats();
        let any: Box<dyn std::any::Any> = rt.take_observer().unwrap();
        let rollup = any.downcast::<Rollup>().unwrap();
        Report::new(&cfg.title(), &rollup, &stats, rt.program(), rt.schemas())
            .with_service(cfg.summary(&out))
            .json()
    };
    let base = render(1);
    for threads in THREADS {
        assert_eq!(base, render(threads), "threads={threads}");
    }
}

/// Admission shedding emits `RequestShed` and never perturbs the machine:
/// a shed-heavy run still matches across executors, and the rollup's
/// counters reconcile with the driver's dispositions.
#[test]
fn shedding_reconciles_with_the_rollup() {
    let ids = service::build();
    let mut rt = Runtime::new(
        ids.program.clone(),
        4,
        CostModel::cm5(),
        ExecMode::Hybrid,
        InterfaceSet::Full,
    )
    .unwrap();
    rt.enable_trace();
    rt.attach_observer(Box::new(Rollup::new()));
    let inst = service::setup(&mut rt, &ids, 8);
    let params = ServeParams {
        horizon: 20_000,
        dist: ArrivalDist::Poisson { mean_gap: 25.0 },
        clients: 4,
        seed: 9,
        deadline: 0,
        max_queue: 3,
    };
    let out = service::run_service(&mut rt, &inst, &params).unwrap();
    let shed = out
        .records
        .iter()
        .filter(|r| r.disposition == Disposition::ShedQueue)
        .count() as u64;
    let completed = out
        .records
        .iter()
        .filter(|r| matches!(r.disposition, Disposition::Completed(_)))
        .count() as u64;
    assert!(shed > 0, "overload must shed");
    let any: Box<dyn std::any::Any> = rt.take_observer().unwrap();
    let rollup = any.downcast::<Rollup>().unwrap();
    assert_eq!(rollup.requests_shed, shed);
    assert_eq!(rollup.requests_completed, completed);
    assert_eq!(
        rollup.requests_arrived,
        out.records.len() as u64 - shed,
        "arrived counts only admitted requests"
    );
    assert_eq!(
        rollup.requests_in_flight() as u64,
        rollup.requests_arrived - completed
    );
}
