//! Cross-crate integration: every evaluation kernel, small scale, checked
//! against its native reference under both execution modes, plus global
//! conservation invariants (contexts, messages) after quiescence.

use hem::analysis::InterfaceSet;
use hem::apps::{callintensive, em3d, md, sor, sync};
use hem::core::{ExecMode, Runtime};
use hem::machine::cost::CostModel;
use hem::machine::topology::ProcGrid;
use hem::{NodeId, Value};

fn assert_conserved(rt: &Runtime, what: &str) {
    let t = rt.stats().totals();
    assert_eq!(rt.live_contexts(), 0, "{what}: leaked contexts");
    assert_eq!(t.ctx_alloc, t.ctx_free, "{what}: context conservation");
    assert_eq!(
        t.msgs_sent + t.replies_sent,
        t.msgs_handled,
        "{what}: message conservation"
    );
    assert!(rt.is_quiescent(), "{what}: machine not quiescent");
}

#[test]
fn call_suite_on_both_machines() {
    let suite = callintensive::build();
    for cost in [CostModel::cm5(), CostModel::t3d()] {
        for mode in [ExecMode::Hybrid, ExecMode::ParallelOnly] {
            let mut rt = Runtime::new(
                suite.program.clone(),
                1,
                cost.clone(),
                mode,
                InterfaceSet::Full,
            )
            .unwrap();
            let o = rt.alloc_object_by_name("Math", NodeId(0));
            let r = rt.call(o, suite.fib, &[Value::Int(16)]).unwrap();
            assert_eq!(r, Some(Value::Int(callintensive::fib_native(16) as i64)));
            let r = rt.call(o, suite.nqueens, &[Value::Int(6)]).unwrap();
            assert_eq!(r, Some(Value::Int(callintensive::nqueens_native(6) as i64)));
            assert_conserved(&rt, &format!("calls/{}/{}", cost.name, mode));
        }
    }
}

#[test]
fn sor_full_pipeline() {
    for mode in [ExecMode::Hybrid, ExecMode::ParallelOnly] {
        let ids = sor::build();
        let procs = ProcGrid::square(16);
        let mut rt = Runtime::new(
            ids.program.clone(),
            16,
            CostModel::cm5(),
            mode,
            InterfaceSet::Full,
        )
        .unwrap();
        let inst = sor::setup(
            &mut rt,
            &ids,
            sor::SorParams {
                n: 20,
                block: 2,
                procs,
            },
        );
        sor::run(&mut rt, &inst, 2).unwrap();
        let vals = sor::grid_values(&rt, &inst);
        let native = sor::native(20, 2);
        assert_eq!(vals, native, "{mode}: SOR grid must match bit-exactly");
        assert_conserved(&rt, &format!("sor/{mode}"));
    }
}

#[test]
fn em3d_three_styles_both_modes() {
    let ids = em3d::build(4);
    let g = em3d::generate(32, 4, 8, 0.4, 3);
    let (en, hn) = em3d::native(&g, 2);
    for style in [em3d::Style::Pull, em3d::Style::Push, em3d::Style::Forward] {
        for mode in [ExecMode::Hybrid, ExecMode::ParallelOnly] {
            let mut rt = Runtime::new(
                ids.program.clone(),
                8,
                CostModel::t3d(),
                mode,
                InterfaceSet::Full,
            )
            .unwrap();
            let inst = em3d::setup(&mut rt, &ids, &g);
            em3d::run(&mut rt, &inst, style, 2).unwrap();
            let (e, h) = em3d::values(&rt, &inst);
            for (a, b) in e.iter().zip(&en).chain(h.iter().zip(&hn)) {
                assert!((a - b).abs() < 1e-9, "{style}/{mode}: {a} vs {b}");
            }
            assert_conserved(&rt, &format!("em3d/{style}/{mode}"));
        }
    }
}

#[test]
fn md_force_full_pipeline() {
    let ids = md::build();
    let sys = md::generate(150, 1.2, 4, md::Layout::Spatial, 5);
    let native = md::native_forces(&sys);
    for mode in [ExecMode::Hybrid, ExecMode::ParallelOnly] {
        let mut rt = Runtime::new(
            ids.program.clone(),
            4,
            CostModel::cm5(),
            mode,
            InterfaceSet::Full,
        )
        .unwrap();
        let inst = md::setup(&mut rt, &ids, &sys);
        md::run_iteration(&mut rt, &inst).unwrap();
        let f = md::forces(&rt, &inst);
        for (a, b) in f.iter().zip(&native) {
            for c in 0..3 {
                assert!((a[c] - b[c]).abs() / a[c].abs().max(1.0) < 1e-9, "{mode}");
            }
        }
        assert_conserved(&rt, &format!("md/{mode}"));
    }
}

#[test]
fn sync_structures_end_to_end() {
    let ids = sync::build();
    let mut rt = Runtime::new(
        ids.program.clone(),
        3,
        CostModel::cm5(),
        ExecMode::Hybrid,
        InterfaceSet::Full,
    )
    .unwrap();
    let inst = sync::setup(&mut rt, &ids, 6);
    // data-parallel + reactive + rendezvous in sequence.
    rt.call(inst.drivers[0], ids.fan, &[]).unwrap();
    rt.call(inst.drivers[1], ids.scatter, &[]).unwrap();
    for c in &inst.cell_refs {
        assert_eq!(rt.get_field(*c, ids.value), Value::Int(11));
    }
    let last = sync::run_rendezvous(&mut rt, &inst).unwrap();
    assert_eq!(last, Some(Value::Int(1)));
    assert_conserved(&rt, "sync");
}

#[test]
fn multi_phase_runs_share_state() {
    // Repeated `call`s accumulate virtual time and reuse the object graph.
    let suite = callintensive::build();
    let mut rt = Runtime::new(
        suite.program.clone(),
        1,
        CostModel::cm5(),
        ExecMode::Hybrid,
        InterfaceSet::Full,
    )
    .unwrap();
    let o = rt.alloc_object_by_name("Math", NodeId(0));
    let t0 = rt.makespan();
    rt.call(o, suite.fib, &[Value::Int(10)]).unwrap();
    let t1 = rt.makespan();
    rt.call(o, suite.fib, &[Value::Int(10)]).unwrap();
    let t2 = rt.makespan();
    assert!(t1 > t0 && t2 > t1);
    assert_eq!(t2 - t1, t1 - t0, "identical phases cost identical cycles");
}

#[test]
fn interface_hierarchy_monotone_on_kernels() {
    // More interfaces never hurt, across a parallel workload.
    let mut times = Vec::new();
    for ifaces in [InterfaceSet::Full, InterfaceSet::MbCp, InterfaceSet::CpOnly] {
        let ids = sor::build();
        let procs = ProcGrid::square(16);
        let mut rt = Runtime::new(
            ids.program.clone(),
            16,
            CostModel::cm5(),
            ExecMode::Hybrid,
            ifaces,
        )
        .unwrap();
        let inst = sor::setup(
            &mut rt,
            &ids,
            sor::SorParams {
                n: 24,
                block: 3,
                procs,
            },
        );
        sor::run(&mut rt, &inst, 1).unwrap();
        times.push(rt.makespan());
    }
    assert!(
        times[0] <= times[1],
        "Full {} vs MbCp {}",
        times[0],
        times[1]
    );
    assert!(
        times[1] <= times[2],
        "MbCp {} vs CpOnly {}",
        times[1],
        times[2]
    );
}
