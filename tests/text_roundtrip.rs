//! The canonical text format must round-trip every kernel program in the
//! repository bit-exactly — the strongest coverage of the printer/parser
//! pair, since the kernels exercise the entire instruction set.

use hem::ir::text::{parse_program, print_program};
use hem::ir::Program;

fn roundtrip(name: &str, p: &Program) {
    let text = print_program(p);
    let back = parse_program(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
    assert_eq!(&back, p, "{name}: round-trip mismatch");
    // And printing again is a fixpoint.
    assert_eq!(print_program(&back), text, "{name}: print not canonical");
}

#[test]
fn all_kernel_programs_roundtrip() {
    roundtrip("call-intensive", &hem::apps::callintensive::build().program);
    roundtrip("sor", &hem::apps::sor::build().program);
    roundtrip("md", &hem::apps::md::build().program);
    roundtrip("em3d-deg4", &hem::apps::em3d::build(4).program);
    roundtrip("em3d-deg16", &hem::apps::em3d::build(16).program);
    roundtrip("sync", &hem::apps::sync::build().program);
}

#[test]
fn parsed_kernel_still_executes() {
    use hem::{CostModel, ExecMode, InterfaceSet, NodeId, Runtime, Value};
    let suite = hem::apps::callintensive::build();
    let text = print_program(&suite.program);
    let parsed = parse_program(&text).unwrap();
    let mut rt = Runtime::new(
        parsed,
        1,
        CostModel::cm5(),
        ExecMode::Hybrid,
        InterfaceSet::Full,
    )
    .unwrap();
    let o = rt.alloc_object_by_name("Math", NodeId(0));
    let fib = rt.find_method("Math", "fib").unwrap();
    let r = rt.call(o, fib, &[Value::Int(15)]).unwrap();
    assert_eq!(r, Some(Value::Int(610)));
}
