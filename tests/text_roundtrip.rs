//! The canonical text format must round-trip every kernel program in the
//! repository bit-exactly — the strongest coverage of the printer/parser
//! pair, since the kernels exercise the entire instruction set.

//!
//! The kernel corpus is complemented by *randomly generated* well-formed
//! programs (builder-constructed, so structurally valid by construction)
//! covering the operand/instruction surface the kernels don't stress in
//! odd combinations: finite float constants, locked classes, array
//! fields, joins, continuation stores/sends, forwards, nested control
//! flow. Seeded through the proptest shim, so `HYBRID_TEST_SEED` pins
//! the whole stream for reproduction.

use hem::ir::text::{parse_program, print_program};
use hem::ir::{BinOp, LocalityHint, Program, ProgramBuilder, UnOp, Value};
use proptest::prelude::*;

fn roundtrip(name: &str, p: &Program) {
    let text = print_program(p);
    let back = parse_program(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
    assert_eq!(&back, p, "{name}: round-trip mismatch");
    // And printing again is a fixpoint.
    assert_eq!(print_program(&back), text, "{name}: print not canonical");
}

#[test]
fn all_kernel_programs_roundtrip() {
    roundtrip("call-intensive", &hem::apps::callintensive::build().program);
    roundtrip("sor", &hem::apps::sor::build().program);
    roundtrip("md", &hem::apps::md::build().program);
    roundtrip("em3d-deg4", &hem::apps::em3d::build(4).program);
    roundtrip("em3d-deg16", &hem::apps::em3d::build(16).program);
    roundtrip("sync", &hem::apps::sync::build().program);
}

#[test]
fn parsed_kernel_still_executes() {
    use hem::{CostModel, ExecMode, InterfaceSet, NodeId, Runtime, Value};
    let suite = hem::apps::callintensive::build();
    let text = print_program(&suite.program);
    let parsed = parse_program(&text).unwrap();
    let mut rt = Runtime::new(
        parsed,
        1,
        CostModel::cm5(),
        ExecMode::Hybrid,
        InterfaceSet::Full,
    )
    .unwrap();
    let o = rt.alloc_object_by_name("Math", NodeId(0));
    let fib = rt.find_method("Math", "fib").unwrap();
    let r = rt.call(o, fib, &[Value::Int(15)]).unwrap();
    assert_eq!(r, Some(Value::Int(610)));
}

// ================= random program fuzzing =================

/// One instruction shape in a generated method body.
#[derive(Debug, Clone)]
enum OpDesc {
    /// Integer arithmetic: `acc = acc <op> k`.
    IntArith(u8, i64),
    /// Float arithmetic on finite constants (exercises float printing).
    FloatArith(u8, f64),
    /// Unary op on the accumulator.
    Unary(u8),
    /// Read/write one of the scalar fields.
    FieldGet(u8),
    FieldSet(u8),
    /// Array field: allocate, store, load, length.
    ArrayOps(i64),
    /// Invoke a later method into a slot; optionally touch-get it.
    InvokeInto {
        hop: u8,
        touch: bool,
    },
    /// Two joined invocations plus a touch of the join slot.
    JoinPair(u8),
    /// Conditional with arithmetic in both arms.
    IfElse(i64),
    /// Counted loop with a body op.
    ForRange(u8),
    /// Capture the continuation into a field.
    StoreCont(u8),
    /// First-class send through whatever the accumulator holds.
    SendCont,
    /// Modeled collective over the array field: fire-and-forget
    /// multicast, acked multicast, reduce (with a fuzzed fold op), or
    /// barrier — the `mcast`/`reduce`/`barrier` text forms.
    Collective {
        kind: u8,
        hop: u8,
    },
}

#[derive(Debug, Clone)]
struct FuzzMethodDesc {
    params: u16,
    ops: Vec<OpDesc>,
    /// 0 = reply acc, 1 = reply nil, 2 = halt, 3 = forward to a later method.
    terminal: u8,
}

fn op_desc() -> impl Strategy<Value = OpDesc> {
    (0u8..13, 0u8..6, any::<bool>(), -64i64..64, 0u32..1 << 20).prop_map(
        |(kind, sel, flag, k, fbits)| {
            // Finite float derived from small integer ratios: always
            // prints with full round-trip fidelity.
            let f = f64::from(fbits) / 1024.0 - 100.0;
            match kind {
                0 | 1 => OpDesc::IntArith(sel, k),
                2 => OpDesc::FloatArith(sel, f),
                3 => OpDesc::Unary(sel),
                4 => OpDesc::FieldGet(sel),
                5 => OpDesc::FieldSet(sel),
                6 => OpDesc::ArrayOps(k.rem_euclid(7) + 1),
                7 => OpDesc::InvokeInto {
                    hop: sel,
                    touch: flag,
                },
                8 => OpDesc::JoinPair(sel),
                9 => OpDesc::IfElse(k),
                10 => OpDesc::ForRange(sel),
                11 => OpDesc::Collective {
                    kind: k.rem_euclid(4) as u8,
                    hop: sel,
                },
                _ => {
                    if flag {
                        OpDesc::StoreCont(sel)
                    } else {
                        OpDesc::SendCont
                    }
                }
            }
        },
    )
}

fn fuzz_method_desc() -> impl Strategy<Value = FuzzMethodDesc> {
    (1u16..4, proptest::collection::vec(op_desc(), 0..8), 0u8..4).prop_map(
        |(params, ops, terminal)| FuzzMethodDesc {
            params,
            ops,
            terminal,
        },
    )
}

const INT_OPS: [BinOp; 10] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::Min,
    BinOp::Max,
    BinOp::BitAnd,
    BinOp::BitOr,
    BinOp::BitXor,
    BinOp::Lt,
    BinOp::Ge,
];
const UN_OPS: [UnOp; 6] = [
    UnOp::Neg,
    UnOp::Not,
    UnOp::IsNil,
    UnOp::ToFloat,
    UnOp::ToInt,
    UnOp::Sqrt,
];

/// Build a structurally valid program from descriptors: one unlocked and
/// one locked class, three scalar fields plus an array field, method `i`
/// invoking only methods `> i` (well-formedness needs no termination, but
/// acyclic call structure keeps the fuzz corpus executable in spirit).
fn build_fuzz_program(descs: &[FuzzMethodDesc], locked_split: usize) -> Program {
    let k = descs.len();
    let mut pb = ProgramBuilder::new();
    let open = pb.class("FuzzOpen", false);
    let locked = pb.class("FuzzLocked", true);
    // Field ids are class-scoped: each class gets its own parallel layout
    // so a method only ever names fields of its receiver class.
    let open_fields = [pb.field(open, "fa"), pb.field(open, "fb")];
    let open_arr = pb.array_field(open, "items");
    let locked_fields = [pb.field(locked, "fc"), pb.field(locked, "fd")];
    let locked_arr = pb.array_field(locked, "cells");
    let ids: Vec<_> = descs
        .iter()
        .enumerate()
        .map(|(i, d)| {
            let cls = if i < locked_split { open } else { locked };
            pb.declare(cls, &format!("fz{i}"), d.params)
        })
        .collect();
    let leaf = pb.method(open, "leaf", 1, |mb| {
        let r = mb.binl(BinOp::Add, mb.arg(0), 1);
        mb.reply(r);
    });

    for (i, d) in descs.iter().enumerate() {
        // Callee plus its arity, so every call site passes the declared
        // number of arguments (the builder validates arity).
        let callee_of = |hop: u8| {
            if i + 1 < k {
                let j = i + 1 + (hop as usize % (k - i - 1)).min(k - i - 2);
                (ids[j], descs[j].params)
            } else {
                (leaf, 1)
            }
        };
        let (fields, arr) = if i < locked_split {
            (open_fields, open_arr)
        } else {
            (locked_fields, locked_arr)
        };
        pb.define(ids[i], |mb| {
            let acc = mb.local();
            mb.mov(acc, mb.arg(0));
            for op in &d.ops {
                match *op {
                    OpDesc::IntArith(sel, kv) => {
                        mb.bin(acc, INT_OPS[sel as usize % INT_OPS.len()], acc, kv);
                    }
                    OpDesc::FloatArith(sel, f) => {
                        let t = mb.binl(
                            INT_OPS[sel as usize % 5],
                            Value::Float(f),
                            Value::Float(f / 3.0),
                        );
                        mb.bin(acc, BinOp::Add, acc, t);
                    }
                    OpDesc::Unary(sel) => {
                        let t = mb.unl(UN_OPS[sel as usize % UN_OPS.len()], acc);
                        mb.mov(acc, t);
                    }
                    OpDesc::FieldGet(sel) => {
                        let t = mb.get_field(fields[sel as usize % fields.len()]);
                        mb.mov(acc, t);
                    }
                    OpDesc::FieldSet(sel) => {
                        mb.set_field(fields[sel as usize % fields.len()], acc);
                    }
                    OpDesc::ArrayOps(len) => {
                        mb.arr_new(arr, len);
                        mb.set_elem(arr, 0i64, acc);
                        let t = mb.get_elem(arr, 0i64);
                        let l = mb.arr_len(arr);
                        mb.bin(acc, BinOp::Add, t, l);
                    }
                    OpDesc::InvokeInto { hop, touch } => {
                        let me = mb.self_ref();
                        let (callee, arity) = callee_of(hop);
                        let args = vec![acc.into(); arity as usize];
                        let s = mb.invoke_into(me, callee, &args);
                        if touch {
                            let t = mb.touch_get(s);
                            mb.mov(acc, t);
                        } else {
                            mb.touch(&[s]);
                        }
                    }
                    OpDesc::JoinPair(hop) => {
                        let me = mb.self_ref();
                        let j = mb.slot();
                        mb.join_init(j, 2i64);
                        let (callee, arity) = callee_of(hop);
                        let args: Vec<_> = vec![acc.into(); arity as usize];
                        mb.invoke(Some(j), me, callee, &args, LocalityHint::Unknown);
                        mb.invoke(Some(j), me, callee, &args, LocalityHint::AlwaysLocal);
                        mb.touch(&[j]);
                    }
                    OpDesc::IfElse(kv) => {
                        let c = mb.binl(BinOp::Lt, acc, kv);
                        mb.if_else(
                            c,
                            |mb| mb.bin(acc, BinOp::Add, acc, 1),
                            |mb| mb.bin(acc, BinOp::Sub, acc, 1),
                        );
                    }
                    OpDesc::ForRange(n) => {
                        mb.for_range(0i64, i64::from(n % 5), |mb, iv| {
                            mb.bin(acc, BinOp::Add, acc, iv);
                        });
                    }
                    OpDesc::StoreCont(sel) => {
                        mb.store_cont(fields[sel as usize % fields.len()]);
                    }
                    OpDesc::SendCont => {
                        mb.send_to_cont(acc, 7i64);
                    }
                    OpDesc::Collective { kind, hop } => {
                        let (callee, arity) = callee_of(hop);
                        let args = vec![acc.into(); arity as usize];
                        match kind % 4 {
                            0 => mb.multicast(None, arr, callee, &args),
                            1 => {
                                let s = mb.multicast_into(arr, callee, &args);
                                mb.touch(&[s]);
                            }
                            2 => {
                                let fold = INT_OPS[hop as usize % INT_OPS.len()];
                                let s = mb.reduce(arr, callee, &args, fold);
                                let t = mb.touch_get(s);
                                mb.mov(acc, t);
                            }
                            _ => {
                                let s = mb.barrier(arr);
                                mb.touch(&[s]);
                            }
                        }
                    }
                }
            }
            match d.terminal {
                0 => mb.reply(acc),
                1 => mb.reply_nil(),
                2 => mb.halt(),
                _ => {
                    let me = mb.self_ref();
                    let (callee, arity) = callee_of(0);
                    let args = vec![acc.into(); arity as usize];
                    mb.forward(me, callee, &args, LocalityHint::Unknown);
                }
            }
        });
    }
    pb.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_programs_roundtrip(
        descs in proptest::collection::vec(fuzz_method_desc(), 1..7),
        locked_split in 0usize..7,
    ) {
        let split = locked_split.min(descs.len());
        let p = build_fuzz_program(&descs, split);
        let text = print_program(&p);
        let back = parse_program(&text)
            .unwrap_or_else(|e| panic!("fuzz parse failed: {e}\n{text}"));
        prop_assert_eq!(&back, &p, "fuzz round-trip mismatch");
        prop_assert_eq!(print_program(&back), text, "fuzz print not canonical");
    }
}
