//! Shared helpers for the schedule-exploration conformance harness: micro
//! kernels built for specific protocol invariants, reduced-size app-kernel
//! runners with the sanitizer armed, and the state-comparison assertions
//! (mirroring the fault-matrix conventions).

#![allow(dead_code)] // each integration test uses a subset

use hem::analysis::InterfaceSet;
use hem::apps::{em3d, md, sor, sync};
use hem::core::{ExecMode, NodeObjectState, Runtime, SchedImpl, TieBreak, TieChoice};
use hem::ir::{BinOp, LocalityHint, MethodId, Program, ProgramBuilder, Value};
use hem::machine::cost::CostModel;
use hem::machine::stats::MachineStats;
use hem::machine::topology::ProcGrid;
use hem::NodeId;

/// The four application kernels, at conformance (reduced) sizes.
pub const APP_KERNELS: [&str; 4] = ["sor", "em3d", "md", "sync"];

/// Everything the conformance assertions look at from one run.
pub struct Outcome {
    /// Root-call reply (micro kernels; `None` where the kernel drives
    /// itself through multiple calls).
    pub result: Option<Value>,
    /// Final per-node object state.
    pub objects: Vec<NodeObjectState>,
    /// The tie-break decisions the run took (replay vector).
    pub tie_choices: Vec<u32>,
    /// The full decision log (choice + arity), for the explorer's DFS.
    pub tie_log: Vec<TieChoice>,
    /// Sanitizer violations (empty on a clean run).
    pub violations: Vec<String>,
    /// Final virtual time.
    pub makespan: u64,
    /// Machine counters.
    pub stats: MachineStats,
}

/// How to replay a failing schedule, for panic messages.
pub fn replay_help(kernel: &str, choices: &[u32]) -> String {
    format!(
        "kernel {kernel}: failing tie-break sequence {choices:?} — replay with \
         rt.set_tie_break(TieBreak::Replay(vec!{choices:?}))"
    )
}

/// Seeds: `HYBRID_TEST_SEED` (one seed) when set — the CI conformance job
/// pins three — else a built-in trio, matching the fault-matrix harness.
pub fn seeds() -> Vec<u64> {
    match std::env::var("HYBRID_TEST_SEED") {
        Ok(s) => vec![s
            .trim()
            .parse()
            .expect("HYBRID_TEST_SEED must be an unsigned integer")],
        Err(_) => vec![1, 0xDEAD_BEEF, 3_141_592_653],
    }
}

/// SplitMix64 step (the same generator the proptest shim and the seeded
/// tie-break policy use), for deriving per-sample seeds.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

// ================= comparison =================

/// Value equality up to floating-point accumulation order: different
/// schedules and modes re-associate float sums, so floats compare within
/// a tolerance; everything else exactly.
pub fn value_close(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Float(x), Value::Float(y)) => {
            (x - y).abs() <= 1e-6_f64.max(1e-9 * x.abs().max(y.abs()))
        }
        _ => a == b,
    }
}

type ObjectState = [Vec<(u32, Vec<Value>, Vec<Vec<Value>>)>];

/// Structural object-state equality with [`value_close`] on the payload.
pub fn assert_state_close(label: &str, a: &ObjectState, b: &ObjectState) {
    assert_eq!(a.len(), b.len(), "{label}: node count");
    for (ni, (na, nb)) in a.iter().zip(b).enumerate() {
        assert_eq!(na.len(), nb.len(), "{label}: node {ni} object count");
        for (oi, (oa, ob)) in na.iter().zip(nb).enumerate() {
            assert_eq!(oa.0, ob.0, "{label}: node {ni} obj {oi} class");
            let scal =
                oa.1.len() == ob.1.len() && oa.1.iter().zip(&ob.1).all(|(x, y)| value_close(x, y));
            let arr = oa.2.len() == ob.2.len()
                && oa.2.iter().zip(&ob.2).all(|(xs, ys)| {
                    xs.len() == ys.len() && xs.iter().zip(ys).all(|(x, y)| value_close(x, y))
                });
            assert!(
                scal && arr,
                "{label}: node {ni} obj {oi} state differs:\n  a: {oa:?}\n  b: {ob:?}"
            );
        }
    }
}

/// A conformant run recorded no sanitizer violations; the panic message
/// carries the schedule's replay vector.
pub fn assert_clean(label: &str, o: &Outcome) {
    assert!(
        o.violations.is_empty(),
        "{label}: sanitizer violations {:?}\n{}",
        o.violations,
        replay_help(label, &o.tie_choices)
    );
}

// ================= micro kernels =================

/// Peer allocation + root-argument production for a micro kernel.
pub type MakeArgs = Box<dyn Fn(&mut Runtime) -> Vec<Value>>;

/// A self-contained micro program exercising one slice of the protocol.
pub struct MicroKernel {
    /// Name, for labels.
    pub name: &'static str,
    /// The program.
    pub program: Program,
    /// Root entry method (on an object of `entry_class`, node 0).
    pub entry: MethodId,
    /// Class the root object is allocated from.
    pub entry_class: &'static str,
    /// Node count.
    pub nodes: u32,
    /// Lowered `max_seq_depth`, when the kernel targets the §4.1 guard.
    pub max_seq_depth: Option<u32>,
    /// Allocate peers and produce the root-call arguments.
    pub make_args: MakeArgs,
}

/// Future fan-out: two remote `bump`s touched together. Exercises the
/// multi-future touch (a wake is sound only when *every* touched slot is
/// satisfied) and the one-reply-per-call root invariant.
pub fn micro_fan2() -> MicroKernel {
    let mut pb = ProgramBuilder::new();
    let cls = pb.class("Micro", false);
    let value = pb.field(cls, "value");
    let bump = pb.method(cls, "bump", 1, |mb| {
        let x = mb.arg(0);
        let v = mb.get_field(value);
        let nv = mb.binl(BinOp::Add, v, x);
        mb.set_field(value, nv);
        mb.reply(nv);
    });
    let entry = pb.method(cls, "fan", 2, |mb| {
        let s1 = mb.invoke_into(mb.arg(0), bump, &[Value::Int(10).into()]);
        let s2 = mb.invoke_into(mb.arg(1), bump, &[Value::Int(20).into()]);
        mb.touch(&[s1, s2]);
        let a = mb.get_slot(s1);
        let b = mb.get_slot(s2);
        let r = mb.binl(BinOp::Add, a, b);
        mb.reply(r);
    });
    MicroKernel {
        name: "fan2",
        program: pb.finish(),
        entry,
        entry_class: "Micro",
        nodes: 4,
        max_seq_depth: None,
        make_args: Box::new(move |rt| {
            let p1 = rt.alloc_object_by_name("Micro", NodeId(1));
            let p2 = rt.alloc_object_by_name("Micro", NodeId(2));
            rt.set_field(p1, value, Value::Int(0));
            rt.set_field(p2, value, Value::Int(0));
            vec![Value::Obj(p1), Value::Obj(p2)]
        }),
    }
}

/// Join fan-out: two remote `bump`s replying into one join counter.
/// Exercises join-decrement delivery through the remote reply path.
pub fn micro_jfan() -> MicroKernel {
    let mut pb = ProgramBuilder::new();
    let cls = pb.class("Micro", false);
    let value = pb.field(cls, "value");
    let bump = pb.method(cls, "bump", 1, |mb| {
        let x = mb.arg(0);
        let v = mb.get_field(value);
        let nv = mb.binl(BinOp::Add, v, x);
        mb.set_field(value, nv);
        mb.reply(nv);
    });
    let entry = pb.method(cls, "jfan", 2, |mb| {
        let j = mb.slot();
        mb.join_init(j, 2i64);
        mb.invoke(
            Some(j),
            mb.arg(0),
            bump,
            &[Value::Int(5).into()],
            LocalityHint::Unknown,
        );
        mb.invoke(
            Some(j),
            mb.arg(1),
            bump,
            &[Value::Int(7).into()],
            LocalityHint::Unknown,
        );
        mb.touch(&[j]);
        mb.reply(1i64);
    });
    MicroKernel {
        name: "jfan",
        program: pb.finish(),
        entry,
        entry_class: "Micro",
        nodes: 4,
        max_seq_depth: None,
        make_args: Box::new(move |rt| {
            let p1 = rt.alloc_object_by_name("Micro", NodeId(1));
            let p2 = rt.alloc_object_by_name("Micro", NodeId(2));
            rt.set_field(p1, value, Value::Int(0));
            rt.set_field(p2, value, Value::Int(0));
            vec![Value::Obj(p1), Value::Obj(p2)]
        }),
    }
}

/// Continuation-passing callee whose caller's return slot is *not* slot
/// 0: `park` stores its continuation in a field and halts; a separate
/// `release` (joined at slot 0, forcing the CP future to slot 1) sends
/// through it later. Exercises lazy shell creation (§3.2.3) at a nonzero
/// continuation-slot offset, adoption, and first-class sends.
pub fn micro_cpfan() -> MicroKernel {
    let mut pb = ProgramBuilder::new();
    let cls = pb.class("Micro", false);
    let parked = pb.field(cls, "parked");
    let value = pb.field(cls, "value");
    let park = pb.method(cls, "park", 1, |mb| {
        mb.set_field(value, mb.arg(0));
        mb.store_cont(parked);
        mb.halt();
    });
    let release = pb.method(cls, "release", 0, |mb| {
        let k = mb.get_field(parked);
        let v = mb.get_field(value);
        let nv = mb.binl(BinOp::Mul, v, 3);
        mb.send_to_cont(k, nv);
        mb.set_field(parked, Value::Nil);
        mb.reply_nil();
    });
    let entry = pb.method(cls, "cpfan", 1, |mb| {
        // Slot 0 is a join the CP call does not use, so the CP callee's
        // continuation lands at slot offset 1 — the shell invariant must
        // hold away from offset 0.
        let j = mb.slot();
        mb.join_init(j, 1i64);
        let s = mb.invoke_into(mb.arg(0), park, &[Value::Int(4).into()]);
        mb.invoke(Some(j), mb.arg(0), release, &[], LocalityHint::Unknown);
        let v = mb.touch_get(s);
        mb.touch(&[j]);
        mb.reply(v);
    });
    MicroKernel {
        name: "cpfan",
        program: pb.finish(),
        entry,
        entry_class: "Micro",
        nodes: 2,
        max_seq_depth: None,
        make_args: Box::new(move |rt| {
            // The peer must be on the caller's node: only a *local*
            // sequential invoke of a CP callee takes the lazy-shell path.
            let p = rt.alloc_object_by_name("Micro", NodeId(0));
            rt.set_field(p, parked, Value::Nil);
            rt.set_field(p, value, Value::Int(0));
            vec![Value::Obj(p)]
        }),
    }
}

/// Deep all-local MayBlock recursion, run with `max_seq_depth` lowered to
/// 16: the §4.1 revert-to-parallel guard must divert the chain through
/// heap contexts instead of recursing on the host stack.
pub fn micro_deep_chain() -> MicroKernel {
    let mut pb = ProgramBuilder::new();
    let cls = pb.class("Micro", false);
    let down = pb.declare(cls, "down", 1);
    pb.define(down, |mb| {
        let k = mb.arg(0);
        let done = mb.binl(BinOp::Le, k, 0);
        mb.if_else(
            done,
            |mb| mb.reply(0i64),
            |mb| {
                let me = mb.self_ref();
                let k1 = mb.binl(BinOp::Sub, k, 1);
                // Unknown locality keeps `down` MayBlock (flow rule 1), so
                // the §4.1 depth guard diverts through a heap context
                // instead of trapping — local self-recursion would be
                // classified NonBlocking and a deep NB chain is a genuine
                // stack overflow.
                let s = mb.invoke_into(me, down, &[k1.into()]);
                let v = mb.touch_get(s);
                let r = mb.binl(BinOp::Add, v, 1);
                mb.reply(r);
            },
        );
    });
    MicroKernel {
        name: "deep-chain",
        program: pb.finish(),
        entry: down,
        entry_class: "Micro",
        nodes: 1,
        max_seq_depth: Some(16),
        make_args: Box::new(|_| vec![Value::Int(64)]),
    }
}

/// All protocol micro kernels.
pub fn micro_kernels() -> Vec<MicroKernel> {
    vec![
        micro_fan2(),
        micro_jfan(),
        micro_cpfan(),
        micro_deep_chain(),
    ]
}

/// Run a micro kernel once under `(mode, tie)` with the sanitizer armed.
pub fn run_micro(m: &MicroKernel, mode: ExecMode, tie: TieBreak) -> Outcome {
    run_micro_sched(m, mode, tie, SchedImpl::EventIndex)
}

/// [`run_micro`] with an explicit scheduler implementation (the sharded
/// executor only engages under `TieBreak::Det`; any other tie-break
/// routes to the single-threaded exploring loop).
pub fn run_micro_sched(
    m: &MicroKernel,
    mode: ExecMode,
    tie: TieBreak,
    sched: SchedImpl,
) -> Outcome {
    let mut rt = Runtime::new(
        m.program.clone(),
        m.nodes,
        CostModel::cm5(),
        mode,
        InterfaceSet::Full,
    )
    .unwrap();
    if let Some(d) = m.max_seq_depth {
        rt.max_seq_depth = d;
    }
    rt.enable_sanitizer();
    rt.set_tie_break(tie);
    rt.sched_impl = sched;
    let root = rt.alloc_object_by_name(m.entry_class, NodeId(0));
    let args = (m.make_args)(&mut rt);
    let result = rt.call(root, m.entry, &args).unwrap();
    finish(rt, result)
}

// ================= app kernels (reduced sizes) =================

/// Run an app kernel at conformance size under `(mode, set, tie)` with
/// the sanitizer armed.
pub fn run_app(kernel: &str, mode: ExecMode, set: InterfaceSet, tie: TieBreak) -> Outcome {
    run_app_sched(kernel, mode, set, tie, SchedImpl::EventIndex)
}

/// [`run_app`] with an explicit scheduler implementation.
pub fn run_app_sched(
    kernel: &str,
    mode: ExecMode,
    set: InterfaceSet,
    tie: TieBreak,
    sched: SchedImpl,
) -> Outcome {
    let arm = |rt: &mut Runtime| {
        rt.enable_sanitizer();
        rt.set_tie_break(tie.clone());
        rt.sched_impl = sched;
    };
    let rt = match kernel {
        "sor" => {
            let ids = sor::build();
            let mut rt = Runtime::new(ids.program.clone(), 4, CostModel::cm5(), mode, set).unwrap();
            arm(&mut rt);
            let inst = sor::setup(
                &mut rt,
                &ids,
                sor::SorParams {
                    n: 8,
                    block: 2,
                    procs: ProcGrid::square(4),
                },
            );
            sor::run(&mut rt, &inst, 2).unwrap();
            rt
        }
        "em3d" => {
            let ids = em3d::build(4);
            let g = em3d::generate(24, 4, 8, 0.4, 3);
            let mut rt = Runtime::new(ids.program.clone(), 8, CostModel::t3d(), mode, set).unwrap();
            arm(&mut rt);
            let inst = em3d::setup(&mut rt, &ids, &g);
            em3d::run(&mut rt, &inst, em3d::Style::Pull, 2).unwrap();
            rt
        }
        "md" => {
            let ids = md::build();
            let sys = md::generate(60, 1.2, 8, md::Layout::Spatial, 5);
            let mut rt = Runtime::new(ids.program.clone(), 8, CostModel::cm5(), mode, set).unwrap();
            arm(&mut rt);
            let inst = md::setup(&mut rt, &ids, &sys);
            md::run_iteration(&mut rt, &inst).unwrap();
            rt
        }
        "sync" => {
            let ids = sync::build();
            let mut rt = Runtime::new(ids.program.clone(), 8, CostModel::cm5(), mode, set).unwrap();
            arm(&mut rt);
            let inst = sync::setup(&mut rt, &ids, 8);
            rt.call(inst.drivers[0], ids.fan, &[]).unwrap();
            sync::run_rendezvous(&mut rt, &inst).unwrap();
            rt
        }
        other => panic!("unknown kernel {other}"),
    };
    finish(rt, None)
}

fn finish(mut rt: Runtime, result: Option<Value>) -> Outcome {
    rt.sanitizer_check_quiescent();
    Outcome {
        result,
        objects: rt.object_state(),
        tie_choices: rt.tie_choices(),
        tie_log: rt.tie_log().to_vec(),
        violations: rt.take_sanitizer_violations(),
        makespan: rt.makespan(),
        stats: rt.stats(),
    }
}
