//! Cross-executor conformance for the modeled collectives
//! (multicast / reduce / barrier).
//!
//! Collectives are priced on a virtual binary fan-out tree (see
//! `hem_machine::net`): every down leg originates at the initiator but is
//! delivered `depth` wire hops later, and contributions fold up the same
//! tree in slot order. Their observable behaviour must be a pure function
//! of (program, placement, cost model, fault plan) on *every* scheduler
//! implementation. This suite pins that down three ways:
//!
//! * **Executor matrix** — the collectives-heavy kernels (sync's full
//!   cast/reduce/barrier mix, EM3D, SOR) run bit-identically on the
//!   linear scan, the sharded executor and the optimistic (Time-Warp)
//!   executor at 2 and 4 threads, against the event-index baseline, over
//!   three pinned seeds, with and without a seeded fault plan.
//! * **Degenerate groups** — empty groups, size-1 groups, groups covering
//!   every node, and a root that is itself a member (self-leg) all
//!   resolve with the right values and the same bit-identity.
//! * **Hop pricing** — an explicit assertion on the delivery schedule:
//!   deeper tree legs land exactly `Δdepth × msg_latency` later than
//!   shallow ones. A uniform mispricing (every leg charged one hop) is
//!   invisible to cross-executor diffing — every executor reproduces the
//!   wrong schedule bit-identically — so only this direct check catches
//!   the seeded `collective-skips-hop-cost` mutant.
//!
//! Seeds come from `HYBRID_TEST_SEED` when set (the CI collectives job
//! pins them), else a built-in trio.

use hem::analysis::InterfaceSet;
use hem::apps::{em3d, sor, sync};
use hem::core::trace::{MsgCause, TraceEvent, TraceRecord};
use hem::core::{ExecMode, Runtime, SchedImpl};
use hem::ir::Value;
use hem::machine::cost::CostModel;
use hem::machine::fault::FaultPlan;
use hem::machine::stats::MachineStats;
use hem::machine::topology::ProcGrid;
use hem::machine::NodeId;
use hem::obs::{Report, Rollup};

/// Everything observable about one run, including the rendered rollup
/// report fed by an *online* observer (not the trace buffer).
struct Outcome {
    makespan: u64,
    stats: MachineStats,
    trace: Vec<TraceRecord>,
    report: String,
    results: Vec<Option<Value>>,
}

/// Every non-baseline executor the matrix diffs against
/// `SchedImpl::EventIndex`.
fn executors() -> Vec<(&'static str, SchedImpl)> {
    vec![
        ("linear-scan", SchedImpl::LinearScan),
        ("sharded-2", SchedImpl::Sharded { threads: 2 }),
        ("sharded-4", SchedImpl::Sharded { threads: 4 }),
        ("speculative-2", SchedImpl::Speculative { threads: 2 }),
        ("speculative-4", SchedImpl::Speculative { threads: 4 }),
    ]
}

/// Seeds: `HYBRID_TEST_SEED` (one seed) when set, else a pinned trio,
/// matching the fault-matrix harness.
fn seeds() -> Vec<u64> {
    match std::env::var("HYBRID_TEST_SEED") {
        Ok(s) => vec![s
            .trim()
            .parse()
            .expect("HYBRID_TEST_SEED must be an unsigned integer")],
        Err(_) => vec![1, 0xDEAD_BEEF, 3_141_592_653],
    }
}

fn arm(rt: &mut Runtime, sched: SchedImpl, plan: Option<&FaultPlan>) {
    rt.sched_impl = sched;
    rt.enable_trace();
    rt.attach_observer(Box::new(Rollup::new()));
    if let Some(p) = plan {
        rt.set_fault_plan(p.clone());
    }
}

fn finish(kernel: &str, mut rt: Runtime, results: Vec<Option<Value>>) -> Outcome {
    let stats = rt.stats();
    let any: Box<dyn std::any::Any> = rt.take_observer().expect("rollup attached");
    let rollup = any.downcast::<Rollup>().expect("a Rollup");
    let report = Report::new(kernel, &rollup, &stats, rt.program(), rt.schemas()).text();
    Outcome {
        makespan: rt.makespan(),
        stats,
        trace: rt.take_trace(),
        report,
        results,
    }
}

/// Run one collectives-exercising kernel at P=16. `seed` drives graph
/// generation (EM3D) and the fault plan.
fn run_kernel(kernel: &str, seed: u64, sched: SchedImpl, plan: Option<&FaultPlan>) -> Outcome {
    match kernel {
        "sor" => {
            let ids = sor::build();
            let mut rt = Runtime::new(
                ids.program.clone(),
                16,
                CostModel::cm5(),
                ExecMode::Hybrid,
                InterfaceSet::Full,
            )
            .unwrap();
            arm(&mut rt, sched, plan);
            let inst = sor::setup(
                &mut rt,
                &ids,
                sor::SorParams {
                    n: 12,
                    block: 2,
                    procs: ProcGrid::square(16),
                },
            );
            sor::run(&mut rt, &inst, 1).unwrap();
            finish(kernel, rt, Vec::new())
        }
        "em3d" => {
            let ids = em3d::build(4);
            let g = em3d::generate(30, 4, 16, 0.4, seed);
            let mut rt = Runtime::new(
                ids.program.clone(),
                16,
                CostModel::t3d(),
                ExecMode::Hybrid,
                InterfaceSet::Full,
            )
            .unwrap();
            arm(&mut rt, sched, plan);
            let inst = em3d::setup(&mut rt, &ids, &g);
            em3d::run(&mut rt, &inst, em3d::Style::Pull, 1).unwrap();
            finish(kernel, rt, Vec::new())
        }
        "sync" => {
            // The full structure mix: acked multicast, fire-and-forget
            // multicast, modeled reduce, modeled barrier.
            let ids = sync::build();
            let mut rt = Runtime::new(
                ids.program.clone(),
                16,
                CostModel::cm5(),
                ExecMode::Hybrid,
                InterfaceSet::Full,
            )
            .unwrap();
            arm(&mut rt, sched, plan);
            let inst = sync::setup(&mut rt, &ids, 16);
            let results = vec![
                rt.call(inst.drivers[0], ids.fan, &[]).unwrap(),
                rt.call(inst.drivers[0], ids.scatter, &[]).unwrap(),
                rt.call(inst.drivers[1], ids.sum_all, &[]).unwrap(),
                rt.call(inst.drivers[2], ids.quiesce, &[]).unwrap(),
            ];
            finish(kernel, rt, results)
        }
        other => panic!("unknown kernel {other}"),
    }
}

const KERNELS: [&str; 3] = ["sync", "em3d", "sor"];

fn assert_bit_identical(label: &str, base: &Outcome, other: &Outcome) {
    assert_eq!(base.results, other.results, "{label}: call results");
    assert_eq!(base.makespan, other.makespan, "{label}: makespan");
    assert_eq!(
        base.stats.node_time, other.stats.node_time,
        "{label}: per-node clocks"
    );
    assert_eq!(
        base.stats.per_node, other.stats.per_node,
        "{label}: per-node counters"
    );
    assert_eq!(base.stats.net, other.stats.net, "{label}: net/fault stats");
    if let Some(i) =
        (0..base.trace.len().min(other.trace.len())).find(|&i| base.trace[i] != other.trace[i])
    {
        panic!(
            "{label}: traces diverge at record {i}:\n  baseline: {:?}\n  other:    {:?}",
            base.trace[i], other.trace[i]
        );
    }
    assert_eq!(base.trace.len(), other.trace.len(), "{label}: trace length");
    assert_eq!(
        base.stats.sched.events_dispatched, other.stats.sched.events_dispatched,
        "{label}: events dispatched"
    );
    assert_eq!(base.report, other.report, "{label}: rollup report text");
}

/// Sanity floor for the matrix: every kernel actually issues collectives
/// (otherwise the suite silently stops testing them).
fn assert_uses_collectives(label: &str, out: &Outcome) {
    let t = out.stats.totals();
    assert!(
        t.coll_initiated > 0,
        "{label}: kernel issued no collectives"
    );
    assert!(t.coll_legs_sent > 0, "{label}: no collective legs sent");
}

/// Fault-free matrix: every collectives kernel × pinned seed × executor
/// against the event-index baseline.
#[test]
fn collectives_bit_identical_across_executors() {
    for kernel in KERNELS {
        for seed in seeds() {
            let base = run_kernel(kernel, seed, SchedImpl::EventIndex, None);
            assert_uses_collectives(&format!("{kernel}/seed{seed}"), &base);
            for (name, sched) in executors() {
                let other = run_kernel(kernel, seed, sched, None);
                assert_bit_identical(&format!("{kernel}/seed{seed}/{name}"), &base, &other);
            }
        }
    }
}

/// Faulty matrix: the same diff with a seeded fault plan (loss,
/// duplication, jitter; reliable transport engaged) — collective legs
/// take the same transport path as point-to-point sends, so their fault
/// fates and retransmissions must replay identically everywhere,
/// including through Time-Warp rollbacks.
#[test]
fn collectives_bit_identical_under_faults() {
    for kernel in KERNELS {
        for seed in seeds() {
            let mut plan = FaultPlan::seeded(seed);
            plan.drop_permille = 20;
            plan.dup_permille = 20;
            plan.jitter_max = 80;
            let base = run_kernel(kernel, seed, SchedImpl::EventIndex, Some(&plan));
            assert_uses_collectives(&format!("{kernel}/seed{seed}/faulty"), &base);
            for (name, sched) in executors() {
                let other = run_kernel(kernel, seed, sched, Some(&plan));
                assert_bit_identical(&format!("{kernel}/seed{seed}/faulty/{name}"), &base, &other);
            }
        }
    }
}

/// Run the sync structures over a `n_cells`-member group at P=4 and
/// return (outcome, reduce result, barrier result).
fn run_degenerate(n_cells: u32, sched: SchedImpl) -> Outcome {
    let ids = sync::build();
    let mut rt = Runtime::new(
        ids.program.clone(),
        4,
        CostModel::cm5(),
        ExecMode::Hybrid,
        InterfaceSet::Full,
    )
    .unwrap();
    arm(&mut rt, sched, None);
    let inst = sync::setup(&mut rt, &ids, n_cells);
    // Drivers live on every node; cells fill nodes round-robin from node
    // 0 — so driver 0's collectives include a self-leg (root == member
    // node) whenever n_cells > 0, and driver 1's never do for n_cells=1.
    let results = vec![
        rt.call(inst.drivers[1], ids.fan, &[]).unwrap(),
        rt.call(inst.drivers[0], ids.sum_all, &[]).unwrap(),
        rt.call(inst.drivers[0], ids.quiesce, &[]).unwrap(),
    ];
    finish("sync-degenerate", rt, results)
}

/// Degenerate group shapes: empty, singleton, and a group spanning every
/// node (so the initiator is also a member's host) — correct values on
/// the baseline and bit-identity on every executor.
#[test]
fn degenerate_groups_resolve_and_stay_identical() {
    // (n_cells, expected sum_all result). fan bumps every cell by 1
    // first, so the reduce over n cells folds n ones; an empty group
    // resolves to Nil immediately.
    let cases = [
        (0u32, Value::Nil),
        (1, Value::Int(1)),
        (4, Value::Int(4)), // one cell per node: group size == P
    ];
    for (n_cells, want_sum) in cases {
        let base = run_degenerate(n_cells, SchedImpl::EventIndex);
        assert_eq!(
            base.results,
            vec![Some(Value::Nil), Some(want_sum), Some(Value::Nil)],
            "degenerate/{n_cells}: fan / sum_all / quiesce results"
        );
        let t = base.stats.totals();
        assert_eq!(
            t.coll_initiated, 3,
            "degenerate/{n_cells}: collectives issued"
        );
        assert_eq!(
            t.coll_legs_sent % 2,
            0,
            "degenerate/{n_cells}: reduce+barrier up legs mirror down legs \
             (fan is acked, so every kind pairs its legs)"
        );
        for (name, sched) in executors() {
            let other = run_degenerate(n_cells, sched);
            assert_bit_identical(&format!("degenerate/{n_cells}/{name}"), &base, &other);
        }
    }
}

/// The explicit hop-cost check that kills `collective-skips-hop-cost`.
///
/// One fire-and-forget multicast from node 0 to seven members on nodes
/// 1..=7 (rank r on node r+1, so tree position r+1): every leg originates
/// at the initiator, whose clock advances by `msg_word × words` per
/// injected leg, and a leg at tree depth d is delivered d wire hops
/// later. Each member node is otherwise idle and receives exactly one
/// message, so the first `Multicast` handled on node k reads
///
/// ```text
/// h(rank) = T0 + (rank+1)·msg_word·words + depth(rank+1)·msg_latency + k
/// ```
///
/// for a constant k — and pairwise differences expose the per-hop term
/// exactly. The mutant prices every leg at one hop; every executor
/// reproduces that wrong schedule bit-identically, so this direct
/// assertion is the only line of defense.
#[test]
fn multicast_legs_pay_per_hop_latency() {
    let ids = sync::build();
    let cm = CostModel::cm5();
    let mut rt = Runtime::new(
        ids.program.clone(),
        8,
        cm.clone(),
        ExecMode::Hybrid,
        InterfaceSet::Full,
    )
    .unwrap();
    rt.enable_trace();
    // Hand placement: the driver on node 0, cell rank r on node r+1.
    let cells: Vec<_> = (0..7u32)
        .map(|r| {
            let c = rt.alloc_object_by_name("Cell", NodeId(r + 1));
            rt.set_field(c, ids.value, Value::Int(0));
            c
        })
        .collect();
    let driver = rt.alloc_object_by_name("Driver", NodeId(0));
    rt.set_array(
        driver,
        ids.cells,
        cells.iter().map(|c| Value::Obj(*c)).collect(),
    );
    rt.call(driver, ids.scatter, &[]).unwrap();
    for c in &cells {
        assert_eq!(
            rt.get_field(*c, ids.value),
            Value::Int(10),
            "down-sweep ran"
        );
    }

    let trace = rt.take_trace();
    // First Multicast handled on each member node, with its payload size.
    let handled = |node: u32| -> (u64, u64) {
        trace
            .iter()
            .find_map(|r| match r.event {
                TraceEvent::MsgHandled {
                    node: n,
                    words,
                    cause: MsgCause::Multicast,
                    ..
                } if n.0 == node => Some((r.at, words)),
                _ => None,
            })
            .unwrap_or_else(|| panic!("no multicast leg handled on node {node}"))
    };
    let (h1, words) = handled(1); // rank 0, pos 1, depth 1
    let (h3, _) = handled(3); // rank 2, pos 3, depth 2
    let (h7, _) = handled(7); // rank 6, pos 7, depth 3
    let per_leg = cm.msg_word * words; // initiator's injection time per leg
    let hop = cm.msg_latency;
    assert_eq!(
        h3 - h1,
        2 * per_leg + hop,
        "a depth-2 leg must land one extra wire hop after a depth-1 leg"
    );
    assert_eq!(
        h7 - h1,
        6 * per_leg + 2 * hop,
        "a depth-3 leg must land two extra wire hops after a depth-1 leg"
    );
}
